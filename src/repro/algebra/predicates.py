"""Selection predicates.

A selection condition ``C`` in ``σ_C(E)`` is a boolean combination of atomic
comparisons.  An atomic comparison compares either an attribute with a
constant (``A = 3``, ``price < 100``) or two attributes of the same tuple
(``A = B``).  Selection is a monotone operator regardless of the predicate —
it filters single tuples — so the full boolean language (including negation)
keeps queries inside the paper's monotone fragment.

Predicates are immutable, hashable, and know how to:

* evaluate themselves against a row under a schema,
* report which attributes they mention (used by the normalizer to decide when
  a selection commutes with a projection),
* rewrite their attribute names (used when pushing selections through
  renamings).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.algebra.schema import Schema
from repro.algebra.relation import Row

__all__ = [
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "AttributeRef",
    "Constant",
    "COMPARATORS",
]

#: The supported comparison operators, mapping symbol to implementation.
COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _Operand:
    """Base class for comparison operands (attribute reference or constant)."""

    __slots__ = ()

    def value(self, schema: Schema, row: Row) -> object:
        """The operand's value in the context of ``row`` under ``schema``."""
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """The attribute names this operand mentions."""
        raise NotImplementedError

    def rename(self, mapping: Dict[str, str]) -> "_Operand":
        """This operand with attribute names rewritten via ``mapping``."""
        raise NotImplementedError


class AttributeRef(_Operand):
    """A reference to an attribute of the tuple being tested."""

    __slots__ = ("attribute",)

    def __init__(self, attribute: str):
        if not isinstance(attribute, str) or not attribute:
            raise SchemaError(f"attribute reference must name an attribute, got {attribute!r}")
        self.attribute = attribute

    def value(self, schema: Schema, row: Row) -> object:
        return row[schema.index_of(self.attribute)]

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def rename(self, mapping: Dict[str, str]) -> "AttributeRef":
        return AttributeRef(mapping.get(self.attribute, self.attribute))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeRef) and other.attribute == self.attribute

    def __hash__(self) -> int:
        return hash(("attr", self.attribute))

    def __repr__(self) -> str:
        return self.attribute


class Constant(_Operand):
    """A literal constant operand."""

    __slots__ = ("literal",)

    def __init__(self, literal: object):
        try:
            hash(literal)
        except TypeError:
            raise SchemaError(f"constant {literal!r} must be hashable") from None
        self.literal = literal

    def value(self, schema: Schema, row: Row) -> object:
        return self.literal

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def rename(self, mapping: Dict[str, str]) -> "Constant":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.literal == self.literal

    def __hash__(self) -> int:
        return hash(("const", self.literal))

    def __repr__(self) -> str:
        return repr(self.literal)


class Predicate:
    """Abstract base class for selection predicates."""

    __slots__ = ()

    def evaluate(self, schema: Schema, row: Row) -> bool:
        """True if ``row`` (under ``schema``) satisfies this predicate."""
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        """All attribute names mentioned anywhere in this predicate."""
        raise NotImplementedError

    def rename(self, mapping: Dict[str, str]) -> "Predicate":
        """This predicate with attributes renamed via ``mapping``.

        Used by the normalizer: ``δ_θ(σ_C(E)) = σ_{θ(C)}(δ_θ(E))``.
        """
        raise NotImplementedError

    def validate(self, schema: Schema) -> None:
        """Raise :class:`SchemaError` if the predicate mentions unknown attributes."""
        for a in self.attributes():
            schema.index_of(a)

    # Conjunction/disjunction helpers make call sites read naturally.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """The always-true predicate (selection with it is the identity)."""

    __slots__ = ()

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def rename(self, mapping: Dict[str, str]) -> "TruePredicate":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("true")

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Predicate):
    """An atomic comparison between two operands.

    >>> from repro.algebra.schema import Schema
    >>> p = Comparison(AttributeRef("A"), "=", Constant(3))
    >>> p.evaluate(Schema(["A"]), (3,))
    True
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left: "_Operand | str", op: str, right: "_Operand | object"):
        if isinstance(left, str):
            left = AttributeRef(left)
        if not isinstance(right, _Operand):
            right = Constant(right)
        if not isinstance(left, _Operand):
            raise SchemaError(f"invalid comparison operand {left!r}")
        if op not in COMPARATORS:
            raise SchemaError(
                f"unknown comparison operator {op!r}; expected one of {sorted(COMPARATORS)}"
            )
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, schema: Schema, row: Row) -> bool:
        lhs = self.left.value(schema, row)
        rhs = self.right.value(schema, row)
        try:
            return COMPARATORS[self.op](lhs, rhs)
        except TypeError:
            raise EvaluationError(
                f"cannot compare {lhs!r} {self.op} {rhs!r} (incompatible types)"
            ) from None

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Dict[str, str]) -> "Comparison":
        return Comparison(self.left.rename(mapping), self.op, self.right.rename(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.left == self.left
            and other.op == self.op
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash((self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class And(Predicate):
    """Conjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) and self.right.evaluate(schema, row)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Dict[str, str]) -> "And":
        return And(self.left.rename(mapping), self.right.rename(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("and", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Predicate):
    """Disjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return self.left.evaluate(schema, row) or self.right.evaluate(schema, row)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def rename(self, mapping: Dict[str, str]) -> "Or":
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("or", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Predicate):
    """Negation of a predicate.

    Note that negation inside a *selection* keeps the query monotone: the
    operator σ is monotone in its relation argument for any fixed predicate.
    """

    __slots__ = ("child",)

    def __init__(self, child: Predicate):
        self.child = child

    def evaluate(self, schema: Schema, row: Row) -> bool:
        return not self.child.evaluate(schema, row)

    def attributes(self) -> FrozenSet[str]:
        return self.child.attributes()

    def rename(self, mapping: Dict[str, str]) -> "Not":
        return Not(self.child.rename(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.child == self.child

    def __hash__(self) -> int:
        return hash(("not", self.child))

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


def conjoin(*predicates: Predicate) -> Predicate:
    """Conjunction of any number of predicates (TRUE for zero).

    Flattens nothing; simply left-folds with :class:`And`, dropping
    :class:`TruePredicate` operands.
    """
    result: Predicate = TruePredicate()
    for p in predicates:
        if isinstance(p, TruePredicate):
            continue
        if isinstance(result, TruePredicate):
            result = p
        else:
            result = And(result, p)
    return result
