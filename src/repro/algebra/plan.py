"""Compiled physical query plans: compile once, evaluate many times.

The exact deletion solvers evaluate the same query against thousands of
hypothetical databases that differ from the original by a handful of deleted
tuples.  The recursive interpreters (plain, witness-annotated, and
where-annotated) re-resolved schemas, re-validated predicates, and recomputed
join/projection column positions on **every** call.  This module separates
those two costs:

* :func:`compile_plan` is a **staged compiler**: it validates the query
  tree once against a catalog (relation name →
  :class:`~repro.algebra.schema.Schema`), optionally rewrites it through
  the statistics-driven rule pipeline of :mod:`repro.algebra.optimizer`
  (selection pushdown, greedy join reordering, projection pruning), and
  produces a tree of physical operator nodes — :class:`ScanOp`,
  :class:`FilterOp`, :class:`ProjectOp`, :class:`HashJoinOp`,
  :class:`UnionOp`, :class:`RenameOp` — with all schema resolution,
  predicate binding, column positions, join keys, and union reorders
  frozen into the nodes (and, on the optimized path, residual predicates
  and column masks fused into the scans);
* the resulting :class:`CompiledPlan` then executes against any database
  with the catalog's schemas, in three semantics sharing one operator tree:

  - :meth:`CompiledPlan.rows` — plain set semantics (the
    :func:`repro.algebra.evaluate.evaluate` front);
  - :meth:`CompiledPlan.annotated_rows` — witness-DNF annotation as integer
    bitmasks over a :class:`~repro.provenance.interning.SourceIndex` (the
    :func:`repro.provenance.bitset.bitset_why_provenance` front);
  - :meth:`CompiledPlan.where_rows` — where-provenance location sets per
    view field (the :func:`repro.provenance.where.where_provenance` front).

Compilation also *moves validation forward*: union schema compatibility,
predicate attribute resolution, projection positions, and rename injectivity
are all checked at compile time, so a malformed query fails once, at
:func:`compile_plan`, with the same exception types the interpreters used to
raise mid-evaluation (:class:`~repro.errors.SchemaError` for static schema
problems, :class:`~repro.errors.EvaluationError` for unknown relations and
incompatible unions).  Children are compiled before their parent node is
validated, mirroring the old interpreter's bottom-up error order.

This module deliberately imports nothing from :mod:`repro.provenance` at
module level (the provenance cache imports :func:`compile_plan`); the two
annotated execution modes receive their provenance-layer collaborators —
the interning function, the mask minimizer, the location constructor — as
call-time arguments supplied by the thin fronts.
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import EvaluationError, SchemaError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import (
    And,
    AttributeRef,
    COMPARATORS,
    Comparison,
    Constant,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.optimizer import optimize
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema

__all__ = [
    "DEFAULT_VIEW_NAME",
    "PlanNode",
    "ScanOp",
    "FilterOp",
    "ProjectOp",
    "HashJoinOp",
    "UnionOp",
    "RenameOp",
    "CompiledPlan",
    "compile_plan",
]

#: Name given to evaluated views when the caller does not supply one.
#: (Re-exported by :mod:`repro.algebra.evaluate`, historically its home.)
DEFAULT_VIEW_NAME = "V"

#: A compiled row-level predicate: row → bool, positions pre-resolved.
RowTest = Callable[[Row], bool]

#: A tuple's minimal witnesses as integer bitmasks (see provenance.bitset).
MaskWitnesses = Tuple[int, ...]


def _getter(positions: "List[int] | Tuple[int, ...]"):
    """A C-speed row projector that always returns a tuple."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        only = positions[0]
        return lambda row: (row[only],)
    return itemgetter(*positions)


# ----------------------------------------------------------------------
# Predicate binding: resolve attribute positions once, at compile time.
# ----------------------------------------------------------------------

def _bind_operand(operand, schema: Schema):
    """Compile a comparison operand to a row → value closure."""
    if isinstance(operand, AttributeRef):
        position = schema.index_of(operand.attribute)  # SchemaError if absent
        return lambda row: row[position]
    if isinstance(operand, Constant):
        literal = operand.literal
        return lambda row: literal
    # Unknown operand subtype: fall back to the interpreted protocol.
    return lambda row: operand.value(schema, row)


def bind_predicate(predicate: Predicate, schema: Schema) -> RowTest:
    """Compile ``predicate`` against ``schema`` into a row-level test.

    Attribute positions are resolved once here; unknown attributes raise
    :class:`SchemaError` immediately (compile time), exactly as
    ``predicate.validate(schema)`` would.  Comparing incomparable values at
    run time still raises :class:`EvaluationError`, matching the
    interpreted :meth:`Comparison.evaluate` behaviour.
    """
    if isinstance(predicate, TruePredicate):
        return lambda row: True
    if isinstance(predicate, Comparison):
        left = _bind_operand(predicate.left, schema)
        right = _bind_operand(predicate.right, schema)
        compare = COMPARATORS[predicate.op]
        op = predicate.op

        def test(row: Row) -> bool:
            lhs = left(row)
            rhs = right(row)
            try:
                return compare(lhs, rhs)
            except TypeError:
                raise EvaluationError(
                    f"cannot compare {lhs!r} {op} {rhs!r} (incompatible types)"
                ) from None

        return test
    if isinstance(predicate, And):
        lt = bind_predicate(predicate.left, schema)
        rt = bind_predicate(predicate.right, schema)
        return lambda row: lt(row) and rt(row)
    if isinstance(predicate, Or):
        lt = bind_predicate(predicate.left, schema)
        rt = bind_predicate(predicate.right, schema)
        return lambda row: lt(row) or rt(row)
    if isinstance(predicate, Not):
        ct = bind_predicate(predicate.child, schema)
        return lambda row: not ct(row)
    # Unknown predicate subtype: validate now, interpret per row.
    predicate.validate(schema)
    return lambda row: predicate.evaluate(schema, row)


# ----------------------------------------------------------------------
# Physical operator nodes
# ----------------------------------------------------------------------

class PlanNode:
    """A physical operator with all positions resolved at compile time.

    Every node executes in three semantics over the same compiled structure:

    * :meth:`rows` — plain set-semantics rows;
    * :meth:`annotated` — row → minimal witness masks (witness DNF on ints);
    * :meth:`where` — row → per-attribute source-location sets, positional.
    """

    __slots__ = ("schema",)

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        """Child operators, for plan rendering and introspection."""
        return ()

    def describe(self) -> str:
        """One-line operator description with its resolved positions."""
        raise NotImplementedError

    def rows(self, db: Database) -> "Iterable[Row]":
        """Duplicate-free rows of this operator's result over ``db``."""
        raise NotImplementedError

    def annotated(
        self, db: Database, intern: Callable, minimize: Callable
    ) -> Dict[Row, MaskWitnesses]:
        """row → minimal witness masks; ``intern`` maps source tuples to ids."""
        raise NotImplementedError

    def where(
        self, db: Database, make_location: Callable
    ) -> "Dict[Row, List[Set[object]]]":
        """row → per-output-position sets of propagating source locations."""
        raise NotImplementedError


class ScanOp(PlanNode):
    """Scan a base relation; validates the runtime schema still matches.

    The optimized physical planner may fuse work into the scan:

    * a **residual predicate** (``predicate``/``test``), applied to each
      base row before anything else — the landing site of selection
      pushdown;
    * a **column mask** (``columns``), base-schema positions the scan
      emits — the landing site of projection pruning.

    Provenance semantics are untouched by fusion: witness masks intern the
    *full* base row before the column mask applies, and where-locations
    always carry the full base row, exactly as a ``Filter``/``Project``
    pair over an unfused scan would produce.  Filtering before interning is
    sound because a filtered-out base row contributes no witness downstream.
    """

    __slots__ = ("name", "base_schema", "predicate", "test", "columns", "image_of")

    def __init__(
        self,
        name: str,
        schema: Schema,
        predicate: Optional[Predicate] = None,
        test: Optional[RowTest] = None,
        columns: Optional[Tuple[int, ...]] = None,
    ):
        self.name = name
        self.base_schema = schema
        self.predicate = predicate
        self.test = test
        self.columns = columns
        if columns is None:
            self.schema = schema
            self.image_of = None
        else:
            self.schema = Schema(
                tuple(schema.attributes[i] for i in columns)
            )
            self.image_of = _getter(columns)

    # -- fusion (used only when compiling an optimized logical tree) ----
    def fuse_filter(self, predicate: Predicate) -> "ScanOp":
        """This scan with ``predicate`` conjoined into the residual filter.

        The predicate mentions only visible (emitted) attributes, whose
        names and values are identical on the full base row, so it binds
        against the base schema and runs before the column mask.
        """
        test = bind_predicate(predicate, self.base_schema)  # SchemaError
        if self.test is None:
            fused_pred, fused_test = predicate, test
        else:
            previous = self.test
            fused_pred = And(self.predicate, predicate)
            fused_test = lambda row: previous(row) and test(row)
        return ScanOp(
            self.name, self.base_schema, fused_pred, fused_test, self.columns
        )

    def fuse_project(self, attributes: "Tuple[str, ...]") -> "ScanOp":
        """This scan emitting only ``attributes`` (composed column mask)."""
        visible_positions = self.schema.positions(attributes)  # SchemaError
        if self.columns is None:
            columns = visible_positions
        else:
            columns = tuple(self.columns[p] for p in visible_positions)
        return ScanOp(
            self.name, self.base_schema, self.predicate, self.test, columns
        )

    def describe(self) -> str:
        text = f"Scan {self.name} schema=({', '.join(self.base_schema.attributes)})"
        if self.predicate is not None:
            text += f" filter=[{self.predicate!r}]"
        if self.columns is not None:
            text += f" cols={self.columns}"
        return text

    def _relation(self, db: Database) -> Relation:
        relation = db[self.name]  # EvaluationError when missing
        if relation.schema != self.base_schema:
            raise EvaluationError(
                f"compiled plan is stale: relation {self.name!r} has schema "
                f"{relation.schema.attributes}, plan was compiled against "
                f"{self.base_schema.attributes}"
            )
        return relation

    def _base_rows(self, db: Database) -> "Iterable[Row]":
        rows = self._relation(db).rows
        test = self.test
        if test is None:
            return rows
        return [row for row in rows if test(row)]

    def rows(self, db: Database) -> "Iterable[Row]":
        rows = self._base_rows(db)
        image_of = self.image_of
        if image_of is None:
            return rows
        return {image_of(row) for row in rows}

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        name = self.name
        rows = self._base_rows(db)
        image_of = self.image_of
        if image_of is None:
            return {row: (1 << intern((name, row)),) for row in rows}
        merged: Dict[Row, Set[int]] = {}
        merged_get = merged.get
        for row in rows:
            image = image_of(row)
            mask = 1 << intern((name, row))
            masks = merged_get(image)
            if masks is None:
                merged[image] = {mask}
            else:
                masks.add(mask)
        return {row: minimize(masks) for row, masks in merged.items()}

    def where(self, db, make_location):
        name = self.name
        rows = self._base_rows(db)
        attrs = self.schema.attributes
        image_of = self.image_of
        if image_of is None:
            return {
                row: [{make_location(name, row, attr)} for attr in attrs]
                for row in rows
            }
        merged: "Dict[Row, List[Set[object]]]" = {}
        merged_get = merged.get
        for row in rows:
            image = image_of(row)
            existing = merged_get(image)
            if existing is None:
                merged[image] = [
                    {make_location(name, row, attr)} for attr in attrs
                ]
            else:
                for position, attr in enumerate(attrs):
                    existing[position].add(make_location(name, row, attr))
        return merged


class FilterOp(PlanNode):
    """Selection with the predicate bound to column positions at compile."""

    __slots__ = ("child", "predicate", "test")

    def __init__(self, child: PlanNode, predicate: Predicate, test: RowTest):
        self.child = child
        self.predicate = predicate
        self.test = test
        self.schema = child.schema

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter [{self.predicate!r}]"

    def rows(self, db: Database) -> "Iterable[Row]":
        test = self.test
        return [row for row in self.child.rows(db) if test(row)]

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        test = self.test
        return {
            row: wits
            for row, wits in self.child.annotated(db, intern, minimize).items()
            if test(row)
        }

    def where(self, db, make_location):
        test = self.test
        return {
            row: sets
            for row, sets in self.child.where(db, make_location).items()
            if test(row)
        }


class ProjectOp(PlanNode):
    """Projection with output positions resolved at compile time."""

    __slots__ = ("child", "positions", "image_of")

    def __init__(self, child: PlanNode, attributes: Tuple[str, ...]):
        self.child = child
        self.schema = child.schema.project(attributes)  # SchemaError if bad
        self.positions = child.schema.positions(attributes)
        self.image_of = _getter(self.positions)

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        attrs = ", ".join(self.schema.attributes)
        return f"Project [{attrs}] cols={self.positions}"

    def rows(self, db: Database) -> "Iterable[Row]":
        image_of = self.image_of
        return {image_of(row) for row in self.child.rows(db)}

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        image_of = self.image_of
        merged: Dict[Row, Set[int]] = {}
        merged_get = merged.get
        for row, wits in self.child.annotated(db, intern, minimize).items():
            image = image_of(row)
            masks = merged_get(image)
            if masks is None:
                merged[image] = set(wits)
            else:
                masks.update(wits)
        return {row: minimize(masks) for row, masks in merged.items()}

    def where(self, db, make_location):
        image_of = self.image_of
        positions = self.positions
        merged: "Dict[Row, List[Set[object]]]" = {}
        merged_get = merged.get
        for row, sets in self.child.where(db, make_location).items():
            image = image_of(row)
            existing = merged_get(image)
            if existing is None:
                merged[image] = [set(sets[p]) for p in positions]
            else:
                for out_pos, p in enumerate(positions):
                    existing[out_pos] |= sets[p]
        return merged


class HashJoinOp(PlanNode):
    """Natural join with keys, extras, and attribute lineage precomputed.

    Degenerates to a hash-free cross product when the operand schemas share
    no attributes (empty keys bucket everything together).
    """

    __slots__ = (
        "left",
        "right",
        "shared",
        "left_key_positions",
        "right_key_positions",
        "right_extra_positions",
        "left_key_of",
        "right_key_of",
        "extra_of",
        "where_pairs",
    )

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right
        left_schema, right_schema = left.schema, right.schema
        self.schema = left_schema.join(right_schema)
        self.shared = left_schema.common(right_schema)
        self.left_key_positions = left_schema.positions(self.shared)
        self.right_key_positions = right_schema.positions(self.shared)
        self.right_extra_positions = tuple(
            i
            for i, attr in enumerate(right_schema.attributes)
            if attr not in left_schema
        )
        self.left_key_of = _getter(self.left_key_positions)
        self.right_key_of = _getter(self.right_key_positions)
        self.extra_of = _getter(self.right_extra_positions)
        # For where-provenance: each output position's source positions in
        # the left and right operands (None when the attribute is absent).
        pairs = []
        for attr in self.schema.attributes:
            left_pos = left_schema.index_of(attr) if attr in left_schema else None
            right_pos = (
                right_schema.index_of(attr) if attr in right_schema else None
            )
            pairs.append((left_pos, right_pos))
        self.where_pairs: Tuple[Tuple[Optional[int], Optional[int]], ...] = (
            tuple(pairs)
        )

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        if not self.shared:
            return "HashJoin (cross product: no shared attributes)"
        return (
            f"HashJoin on ({', '.join(self.shared)}) "
            f"keysL={self.left_key_positions} keysR={self.right_key_positions} "
            f"extraR={self.right_extra_positions}"
        )

    def _buckets(self, right_items, value_of):
        """Partition right items by join key, carrying ``value_of(item)``."""
        right_key_of = self.right_key_of
        extra_of = self.extra_of
        buckets: Dict[Tuple[object, ...], List[Tuple[Row, object]]] = {}
        for row, payload in right_items:
            buckets.setdefault(right_key_of(row), []).append(
                (extra_of(row), value_of(payload))
            )
        return buckets

    def rows(self, db: Database) -> "Iterable[Row]":
        right_key_of = self.right_key_of
        extra_of = self.extra_of
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in self.right.rows(db):
            buckets.setdefault(right_key_of(row), []).append(extra_of(row))
        left_key_of = self.left_key_of
        out: Set[Row] = set()
        for lrow in self.left.rows(db):
            matches = buckets.get(left_key_of(lrow))
            if matches:
                for extra in matches:
                    out.add(lrow + extra)
        return out

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        left_table = self.left.annotated(db, intern, minimize)
        right_table = self.right.annotated(db, intern, minimize)
        buckets = self._buckets(right_table.items(), lambda wits: wits)
        left_key_of = self.left_key_of
        out: Dict[Row, Set[int]] = {}
        out_get = out.get
        for lrow, lwits in left_table.items():
            matches = buckets.get(left_key_of(lrow))
            if not matches:
                continue
            for extra, rwits in matches:
                joined = lrow + extra
                if len(lwits) == 1 and len(rwits) == 1:
                    products = {lwits[0] | rwits[0]}
                else:
                    products = {lm | rm for lm in lwits for rm in rwits}
                masks = out_get(joined)
                if masks is None:
                    out[joined] = products
                else:
                    masks.update(products)
        return {row: minimize(masks) for row, masks in out.items()}

    def where(self, db, make_location):
        left_table = self.left.where(db, make_location)
        right_table = self.right.where(db, make_location)
        buckets = self._buckets(right_table.items(), lambda sets: sets)
        left_key_of = self.left_key_of
        where_pairs = self.where_pairs
        out: "Dict[Row, List[Set[object]]]" = {}
        out_get = out.get
        for lrow, lsets in left_table.items():
            matches = buckets.get(left_key_of(lrow))
            if not matches:
                continue
            for extra, rsets in matches:
                joined = lrow + extra
                existing = out_get(joined)
                if existing is None:
                    derived = []
                    for left_pos, right_pos in where_pairs:
                        sources: Set[object] = set()
                        if left_pos is not None:
                            sources |= lsets[left_pos]
                        if right_pos is not None:
                            sources |= rsets[right_pos]
                        derived.append(sources)
                    out[joined] = derived
                else:
                    for position, (left_pos, right_pos) in enumerate(where_pairs):
                        if left_pos is not None:
                            existing[position] |= lsets[left_pos]
                        if right_pos is not None:
                            existing[position] |= rsets[right_pos]
        return out


class UnionOp(PlanNode):
    """Union with the right operand's attribute reorder precomputed."""

    __slots__ = ("left", "right", "reorder", "reorder_of")

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right
        if not left.schema.is_union_compatible(right.schema):
            raise EvaluationError(
                f"union of incompatible schemas {left.schema.attributes} "
                f"and {right.schema.attributes}"
            )
        self.schema = left.schema
        reorder = right.schema.positions(left.schema.attributes)
        # Identity reorders (same attribute order both sides) skip remapping.
        self.reorder: Optional[Tuple[int, ...]] = (
            None if reorder == tuple(range(len(reorder))) else reorder
        )
        self.reorder_of = (lambda row: row) if self.reorder is None else _getter(
            reorder
        )

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        reorder = "identity" if self.reorder is None else str(self.reorder)
        return f"Union reorderR={reorder}"

    def rows(self, db: Database) -> "Iterable[Row]":
        merged = set(self.left.rows(db))
        reorder_of = self.reorder_of
        merged.update(reorder_of(row) for row in self.right.rows(db))
        return merged

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        left_table = self.left.annotated(db, intern, minimize)
        right_table = self.right.annotated(db, intern, minimize)
        reorder_of = self.reorder_of
        merged: Dict[Row, Set[int]] = {
            row: set(wits) for row, wits in left_table.items()
        }
        merged_get = merged.get
        for row, wits in right_table.items():
            image = reorder_of(row)
            masks = merged_get(image)
            if masks is None:
                merged[image] = set(wits)
            else:
                masks.update(wits)
        return {row: minimize(masks) for row, masks in merged.items()}

    def where(self, db, make_location):
        left_table = self.left.where(db, make_location)
        right_table = self.right.where(db, make_location)
        reorder = self.reorder
        reorder_of = self.reorder_of
        merged: "Dict[Row, List[Set[object]]]" = {
            row: [set(s) for s in sets] for row, sets in left_table.items()
        }
        merged_get = merged.get
        for row, sets in right_table.items():
            image = reorder_of(row)
            if reorder is not None:
                sets = [sets[p] for p in reorder]
            existing = merged_get(image)
            if existing is None:
                merged[image] = [set(s) for s in sets]
            else:
                for position, sources in enumerate(sets):
                    existing[position] |= sources
        return merged


class RenameOp(PlanNode):
    """Renaming: schema relabelled at compile, rows pass through untouched."""

    __slots__ = ("child", "mapping")

    def __init__(self, child: PlanNode, mapping: Dict[str, str]):
        self.child = child
        self.mapping = dict(mapping)
        self.schema = child.schema.rename(self.mapping)  # SchemaError if bad

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in sorted(self.mapping.items()))
        return f"Rename [{pairs}]"

    def rows(self, db: Database) -> "Iterable[Row]":
        return self.child.rows(db)

    def annotated(self, db, intern, minimize) -> Dict[Row, MaskWitnesses]:
        return self.child.annotated(db, intern, minimize)

    def where(self, db, make_location):
        # Location sets are positional; renaming only relabels the schema.
        return self.child.where(db, make_location)


# ----------------------------------------------------------------------
# The compiled plan
# ----------------------------------------------------------------------

class CompiledPlan:
    """A compiled physical plan: one operator tree, three evaluators.

    Immutable once built; safe to share across hypothetical databases as
    long as the base relation schemas match the catalog the plan was
    compiled against (scans verify this and raise
    :class:`EvaluationError` on a stale plan).
    """

    __slots__ = (
        "query",
        "root",
        "schema",
        "source_names",
        "logical",
        "optimizer_level",
        "rewrites",
    )

    def __init__(
        self,
        query: Query,
        root: PlanNode,
        logical: "Query | None" = None,
        optimizer_level: int = 0,
        rewrites: Tuple[str, ...] = (),
    ):
        self.query = query
        self.root = root
        self.schema = root.schema
        self.source_names: Tuple[str, ...] = tuple(sorted(query.relation_names()))
        #: The logical tree the physical plan was compiled from: the input
        #: query at level 0, the rewritten tree otherwise.
        self.logical: Query = query if logical is None else logical
        self.optimizer_level = optimizer_level
        #: Names of the optimizer rules that fired, in order.
        self.rewrites = rewrites

    # -- plain set semantics ------------------------------------------
    def rows(self, db: Database) -> FrozenSet[Row]:
        """The view's rows over ``db`` under set semantics."""
        return frozenset(self.root.rows(db))

    def relation(self, db: Database, name: str = DEFAULT_VIEW_NAME) -> Relation:
        """The view over ``db`` as a named :class:`Relation`."""
        # Operator output rows come from validated base relations, so the
        # trusted constructor skips per-row re-validation.
        return Relation._trusted(name, self.schema, frozenset(self.root.rows(db)))

    def rows_columnar(self, store) -> FrozenSet[Row]:
        """Like :meth:`rows`, executed over a ColumnStore of the database.

        Answer-identical to ``rows(db)`` for the store's database; vectorized
        when the store is numpy-backed.
        """
        # Local import: plan.py must not import repro.columnar at module
        # level (the columnar kernels import this module).
        from repro.columnar.kernels import columnar_rows

        return columnar_rows(self, store)

    def annotated_rows_columnar(self, store, index) -> Dict[Row, MaskWitnesses]:
        """Like :meth:`annotated_rows`, executed over a ColumnStore."""
        from repro.columnar.kernels import columnar_annotated

        return columnar_annotated(self, store, index)

    def annotated_table_columnar(self, store, index):
        """The annotated evaluation over a ColumnStore as a CSR table.

        Returns a :class:`repro.provenance.witness_table.WitnessTable` —
        the array form the bitset kernel consumes directly; its
        ``to_masks()`` view equals :meth:`annotated_rows` under a shared
        ``index``.
        """
        from repro.columnar.kernels import columnar_annotated_table

        return columnar_annotated_table(self, store, index)

    # -- witness-annotated semantics ----------------------------------
    def annotated_rows(self, db: Database, index) -> Dict[Row, MaskWitnesses]:
        """row → minimal witness bitmasks over ``index`` (a SourceIndex).

        This is the engine under
        :func:`repro.provenance.bitset.bitset_why_provenance`; masks index
        source tuples through ``index.intern``.
        """
        # Local import: plan.py must not import repro.provenance at module
        # level (the provenance cache imports compile_plan).
        from repro.provenance.bitset import minimize_masks

        return self.root.annotated(db, index.intern, minimize_masks)

    # -- where-annotated semantics ------------------------------------
    def where_rows(self, db: Database):
        """(row, attribute) → source locations, the backward image of §3.

        This is the engine under
        :func:`repro.provenance.where.where_provenance`.
        """
        from repro.provenance.locations import Location  # see annotated_rows

        table = self.root.where(db, Location)
        attributes = self.schema.attributes
        return {
            (row, attribute): frozenset(sets[position])
            for row, sets in table.items()
            for position, attribute in enumerate(attributes)
        }

    # -- introspection ------------------------------------------------
    def explain(self) -> str:
        """The physical plan as an indented tree of operator descriptions."""
        # Local import: render imports this module at load time.
        from repro.algebra.render import render_plan

        return render_plan(self)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(schema={list(self.schema.attributes)!r}, "
            f"sources={list(self.source_names)!r})"
        )


def compile_plan(
    query: Query,
    catalog: Mapping[str, Schema],
    optimizer_level: int = 0,
    stats: "object | None" = None,
) -> CompiledPlan:
    """Compile ``query`` against ``catalog`` into a :class:`CompiledPlan`.

    This is a **staged pipeline**:

    1. *validation / baseline physical planning* — the query is compiled
       exactly as written.  All static validation happens here, once:
       unknown base relations raise :class:`EvaluationError` (matching the
       interpreter's runtime lookup), incompatible unions raise
       :class:`EvaluationError` with the historical message, and
       predicate/projection/rename schema problems raise
       :class:`SchemaError`.  Children compile before their parent
       validates, so error precedence matches the old bottom-up
       interpreters — at every optimizer level.
    2. *logical rewriting* (``optimizer_level >= 1``) — the rule pipeline
       of :mod:`repro.algebra.optimizer` (selection pushdown, greedy join
       reordering driven by ``stats``, projection pruning) rewrites the
       validated tree.
    3. *physical planning with fusion* — the rewritten tree is compiled
       with Filter/Project fusion into :class:`ScanOp` (residual
       predicates and column masks).

    ``stats`` is an optional :class:`repro.algebra.stats.TableStatistics`;
    without it the optimizer falls back to uniform default cardinalities
    (pushdown and pruning still apply; join reordering degrades to
    avoiding cross products).  Level 0 is byte-for-byte the historical
    single-shot compiler.
    """
    if optimizer_level <= 0:
        return CompiledPlan(query, _compile(query, catalog))
    _validate(query, catalog)  # same errors, same order, no throwaway tree
    result = optimize(query, catalog, stats=stats, level=optimizer_level)
    return CompiledPlan(
        query,
        _compile(result.query, catalog, fuse=True),
        logical=result.query,
        optimizer_level=optimizer_level,
        rewrites=result.applied,
    )


def _validate(query: Query, catalog: Mapping[str, Schema]) -> Schema:
    """Validate ``query`` bottom-up with :func:`_compile`'s exact errors.

    Mirrors the checks the physical compiler performs — same exception
    types, messages, and child-before-parent precedence — without
    building the operator tree the optimized path would immediately
    discard.
    """
    if isinstance(query, RelationRef):
        try:
            return catalog[query.name]
        except KeyError:
            raise EvaluationError(
                f"catalog has no relation named {query.name!r}; "
                f"known relations: {sorted(catalog)}"
            ) from None

    if isinstance(query, Select):
        schema = _validate(query.child, catalog)
        bind_predicate(query.predicate, schema)  # SchemaError
        return schema

    if isinstance(query, Project):
        return _validate(query.child, catalog).project(query.attributes)

    if isinstance(query, Join):
        left = _validate(query.left, catalog)
        return left.join(_validate(query.right, catalog))

    if isinstance(query, Union):
        left = _validate(query.left, catalog)
        right = _validate(query.right, catalog)
        if not left.is_union_compatible(right):
            raise EvaluationError(
                f"union of incompatible schemas {left.attributes} "
                f"and {right.attributes}"
            )
        return left

    if isinstance(query, Rename):
        return _validate(query.child, catalog).rename(query.mapping_dict)

    raise EvaluationError(f"unknown query node {query!r}")


def _compile(
    query: Query, catalog: Mapping[str, Schema], fuse: bool = False
) -> PlanNode:
    if isinstance(query, RelationRef):
        try:
            schema = catalog[query.name]
        except KeyError:
            raise EvaluationError(
                f"catalog has no relation named {query.name!r}; "
                f"known relations: {sorted(catalog)}"
            ) from None
        return ScanOp(query.name, schema)

    if isinstance(query, Select):
        child = _compile(query.child, catalog, fuse)
        if fuse and isinstance(child, ScanOp):
            # Validate against the visible schema first (same SchemaError a
            # FilterOp would raise), then bind to the base row.
            query.predicate.validate(child.schema)
            return child.fuse_filter(query.predicate)
        test = bind_predicate(query.predicate, child.schema)  # SchemaError
        return FilterOp(child, query.predicate, test)

    if isinstance(query, Project):
        child = _compile(query.child, catalog, fuse)
        if fuse and isinstance(child, ScanOp):
            return child.fuse_project(tuple(query.attributes))
        return ProjectOp(child, query.attributes)

    if isinstance(query, Join):
        return HashJoinOp(
            _compile(query.left, catalog, fuse),
            _compile(query.right, catalog, fuse),
        )

    if isinstance(query, Union):
        return UnionOp(
            _compile(query.left, catalog, fuse),
            _compile(query.right, catalog, fuse),
        )

    if isinstance(query, Rename):
        return RenameOp(_compile(query.child, catalog, fuse), query.mapping_dict)

    raise EvaluationError(f"unknown query node {query!r}")
