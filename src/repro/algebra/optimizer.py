"""Rule-based logical plan rewrites for the staged query compiler.

:func:`repro.algebra.plan.compile_plan` is a staged pipeline: statistics
(:mod:`repro.algebra.stats`) feed this module's **logical rewriter**, whose
output the unchanged physical planner compiles (with Filter/Project fusion
into scans).  The rewriter is a classical rule engine: each rule is a small
class with an ``apply(node, ctx) -> node | None`` interface, and a fixpoint
driver applies a rule set bottom-up until nothing fires.

Three staged passes (the ordering prevents rule oscillation — selection
pushdown and projection pruning invert each other when interleaved):

1. **selection pushdown** — merge stacked selections, push selections
   through Project/Rename/Union and into the narrower side of a Join
   (conjunct by conjunct), so filters run as close to the scans as possible;
2. **join reordering** — each maximal join bush (``flatten_join``) is
   rebuilt as a left-deep chain in greedy order of estimated output size
   (:func:`~repro.algebra.stats.estimate_query`); a permutation projection
   restores the original attribute order when the reorder changed it;
3. **projection pruning** — insert projections that drop every column no
   ancestor needs (below joins, selections, renamings, and through unions),
   so intermediate results carry only live columns.

Every rewrite preserves not just the rows but the **provenance semantics**:
witness bitmasks and where-annotations are positional over source tuples,
and each rule keeps attribute *names* intact (no join-to-selection
rewrites, which the paper warns change annotation propagation).  The
soundness property tests (``tests/test_optimizer.py``) pin optimized plans
to the unoptimized ones row-for-row, mask-for-mask, and location-for-
location on randomized SPJRU workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.classify import flatten_join
from repro.algebra.predicates import And, Predicate, TruePredicate, conjoin
from repro.algebra.schema import Schema
from repro.algebra.stats import Estimate, TableStatistics, estimate_query

__all__ = [
    "DEFAULT_OPTIMIZER_LEVEL",
    "Rule",
    "RewriteContext",
    "OptimizationResult",
    "PUSHDOWN_RULES",
    "PRUNING_RULES",
    "optimize",
]

#: The optimizer level the shared plan memo uses when callers do not choose:
#: 0 = compile the query exactly as written; 1 = full rewrite pipeline.
DEFAULT_OPTIMIZER_LEVEL = 1

#: Upper bound on fixpoint passes (a safety net; real queries converge in
#: a handful of passes because every rule moves work strictly downward).
_MAX_PASSES = 100


class RewriteContext:
    """What the rules may consult: the catalog, statistics, and a trace.

    ``stats`` may be a :class:`TableStatistics`, a zero-argument callable
    producing one, or ``None``.  Statistics are materialized lazily, on the
    first cardinality estimate — collecting them walks every row of the
    referenced relations, and most rewrites (pushdown, pruning) never need
    them.
    """

    __slots__ = ("catalog", "applied", "changed", "_stats_source", "_stats")

    def __init__(
        self,
        catalog: Mapping[str, Schema],
        stats: "TableStatistics | Callable[[], TableStatistics] | None" = None,
    ):
        self.catalog = catalog
        self.applied: List[str] = []
        #: Set by the fixpoint driver whenever a rule fires during a pass.
        self.changed = False
        self._stats_source = stats
        self._stats = stats if isinstance(stats, TableStatistics) else None

    @property
    def stats(self) -> TableStatistics:
        if self._stats is None:
            source = self._stats_source
            self._stats = source() if callable(source) else TableStatistics()
        return self._stats

    def schema(self, node: Query) -> Schema:
        """The node's output schema (trees are small; recompute freely)."""
        return node.output_schema(self.catalog)

    def estimate(self, node: Query) -> Estimate:
        """Estimated cardinality of ``node`` under the context statistics."""
        return estimate_query(node, self.catalog, self.stats)

    def record(self, rule_name: str) -> None:
        self.applied.append(rule_name)
        self.changed = True


class OptimizationResult:
    """The rewritten logical tree plus the trace of rules that fired."""

    __slots__ = ("query", "applied")

    def __init__(self, query: Query, applied: Tuple[str, ...]):
        self.query = query
        self.applied = applied

    def __repr__(self) -> str:
        return f"OptimizationResult(applied={list(self.applied)!r})"


class Rule:
    """One logical rewrite: ``apply`` returns the replacement or ``None``.

    Rules must be *locally sound* (replacement ≡ node on every database
    over the catalog, including witness and where-provenance semantics) and
    must not fire on their own output (the fixpoint driver treats a
    returned node equal to the input as a non-fire, but rules should
    converge by construction).
    """

    name: str = "rule"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        raise NotImplementedError


def _split_conjuncts(predicate: Predicate) -> List[Predicate]:
    """Flatten a top-level conjunction into its conjuncts."""
    if isinstance(predicate, And):
        return _split_conjuncts(predicate.left) + _split_conjuncts(
            predicate.right
        )
    return [predicate]


def _inverse_rename(mapping: Mapping[str, str]) -> Dict[str, str]:
    """new name → old name, for rewriting predicates below a renaming."""
    return {new: old for old, new in mapping.items() if new != old}


# ----------------------------------------------------------------------
# Pass 1: selection pushdown
# ----------------------------------------------------------------------

class DropTrueSelect(Rule):
    """``σ_TRUE(E) → E``."""

    name = "drop-true-select"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Select) and isinstance(
            node.predicate, TruePredicate
        ):
            return node.child
        return None


class MergeSelects(Rule):
    """``σ_C1(σ_C2(E)) → σ_{C2 ∧ C1}(E)`` (one filter pass, one node)."""

    name = "merge-selects"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Select) and isinstance(node.child, Select):
            inner = node.child
            return Select(
                inner.child, conjoin(inner.predicate, node.predicate)
            )
        return None


class MergeProjects(Rule):
    """``Π_B1(Π_B2(E)) → Π_B1(E)`` (the outer projection decides)."""

    name = "merge-projects"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Project) and isinstance(node.child, Project):
            return Project(node.child.child, node.attributes)
        return None


class PushSelectThroughProject(Rule):
    """``σ_C(Π_B(E)) → Π_B(σ_C(E))`` — sound because C only mentions B.

    Rows of ``E`` that collapse to one image under ``Π_B`` agree on every
    attribute of ``B``, hence on ``C``; groups survive or die whole, so the
    merged witness masks and where-locations are unchanged.
    """

    name = "push-select-project"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Select) and isinstance(node.child, Project):
            project = node.child
            return Project(
                Select(project.child, node.predicate), project.attributes
            )
        return None


class PushSelectThroughRename(Rule):
    """``σ_C(δ_θ(E)) → δ_θ(σ_{θ⁻¹(C)}(E))`` — values are untouched by δ."""

    name = "push-select-rename"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Select) and isinstance(node.child, Rename):
            rename = node.child
            inverse = _inverse_rename(rename.mapping_dict)
            predicate = node.predicate.rename(inverse) if inverse else node.predicate
            return Rename(
                Select(rename.child, predicate), rename.mapping_dict
            )
        return None


class PushSelectThroughUnion(Rule):
    """``σ_C(E1 ∪ E2) → σ_C(E1) ∪ σ_C(E2)`` — predicates go by name."""

    name = "push-select-union"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Select) and isinstance(node.child, Union):
            union = node.child
            return Union(
                Select(union.left, node.predicate),
                Select(union.right, node.predicate),
            )
        return None


class PushSelectThroughJoin(Rule):
    """Push each conjunct of ``σ_C(E1 ⋈ E2)`` into the side that covers it.

    A joined row carries its operands' attribute values verbatim (shared
    attributes are equal on both sides), so a conjunct mentioning only one
    side's attributes filters exactly the operand rows that could have
    produced the filtered joined rows.  Conjuncts spanning both sides stay
    above the join.
    """

    name = "push-select-join"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if not (isinstance(node, Select) and isinstance(node.child, Join)):
            return None
        join = node.child
        left_attrs = frozenset(ctx.schema(join.left).attributes)
        right_attrs = frozenset(ctx.schema(join.right).attributes)
        left_parts: List[Predicate] = []
        right_parts: List[Predicate] = []
        kept: List[Predicate] = []
        for conjunct in _split_conjuncts(node.predicate):
            mentioned = conjunct.attributes()
            if mentioned <= left_attrs:
                left_parts.append(conjunct)
            elif mentioned <= right_attrs:
                right_parts.append(conjunct)
            else:
                kept.append(conjunct)
        if not left_parts and not right_parts:
            return None
        left = Select(join.left, conjoin(*left_parts)) if left_parts else join.left
        right = (
            Select(join.right, conjoin(*right_parts)) if right_parts else join.right
        )
        rewritten: Query = Join(left, right)
        if kept:
            rewritten = Select(rewritten, conjoin(*kept))
        return rewritten


# ----------------------------------------------------------------------
# Pass 3: projection pruning
# ----------------------------------------------------------------------

class PushProjectThroughUnion(Rule):
    """``Π_B(E1 ∪ E2) → Π_B(E1) ∪ Π_B(E2)`` (also makes the union's
    right-operand reorder the identity, since both branches emit B)."""

    name = "push-project-union"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if isinstance(node, Project) and isinstance(node.child, Union):
            union = node.child
            return Union(
                Project(union.left, node.attributes),
                Project(union.right, node.attributes),
            )
        return None


class PruneJoinColumns(Rule):
    """``Π_B(E1 ⋈ E2) → Π_B(Π_{B1}(E1) ⋈ Π_{B2}(E2))`` with
    ``Bi = attrs(Ei) ∩ (B ∪ shared)`` — operands carry only live columns.

    The join keys (shared attributes) always survive, so the join structure
    is untouched; operand rows that collapse under ``Π_{Bi}`` agree on the
    key and on every visible attribute, so merging their witness masks and
    where-locations early is exactly what the outer projection would have
    done later.
    """

    name = "prune-join-columns"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if not (isinstance(node, Project) and isinstance(node.child, Join)):
            return None
        join = node.child
        left_schema = ctx.schema(join.left)
        right_schema = ctx.schema(join.right)
        shared = frozenset(left_schema.common(right_schema))
        needed = frozenset(node.attributes) | shared
        left_keep = tuple(a for a in left_schema.attributes if a in needed)
        right_keep = tuple(a for a in right_schema.attributes if a in needed)
        # Projection onto zero attributes is not representable; keep one
        # column of a side that contributes nothing visible (its rows only
        # gate the join through the cross product).
        if not left_keep:
            left_keep = (left_schema.attributes[0],)
        if not right_keep:
            right_keep = (right_schema.attributes[0],)
        shrank_left = len(left_keep) < left_schema.arity
        shrank_right = len(right_keep) < right_schema.arity
        if not shrank_left and not shrank_right:
            return None
        left = Project(join.left, left_keep) if shrank_left else join.left
        right = Project(join.right, right_keep) if shrank_right else join.right
        return Project(Join(left, right), node.attributes)


class PruneSelectColumns(Rule):
    """``Π_B(σ_C(E)) → Π_B(σ_C(Π_{B ∪ attrs(C)}(E)))`` when that shrinks.

    Rows collapsing under the inserted projection agree on every attribute
    of ``C``, so the selection filters whole groups — merging first is
    sound for all three semantics.
    """

    name = "prune-select-columns"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if not (isinstance(node, Project) and isinstance(node.child, Select)):
            return None
        select = node.child
        child_schema = ctx.schema(select.child)
        needed = frozenset(node.attributes) | select.predicate.attributes()
        keep = tuple(a for a in child_schema.attributes if a in needed)
        if len(keep) >= child_schema.arity:
            return None
        return Project(
            Select(Project(select.child, keep), select.predicate),
            node.attributes,
        )


class PruneRenameColumns(Rule):
    """``Π_B(δ_θ(E)) → δ_{θ|B}(Π_{θ⁻¹(B)}(E))`` — sink the projection
    below the renaming (the outer projection becomes redundant because the
    renamed projection already emits exactly ``B``, in order)."""

    name = "prune-rename-columns"

    def apply(self, node: Query, ctx: RewriteContext) -> Optional[Query]:
        if not (isinstance(node, Project) and isinstance(node.child, Rename)):
            return None
        rename = node.child
        inverse = _inverse_rename(rename.mapping_dict)
        sources = tuple(inverse.get(b, b) for b in node.attributes)
        restricted = {
            old: new
            for old, new in rename.mapping_dict.items()
            if old in frozenset(sources) and old != new
        }
        pruned: Query = Project(rename.child, sources)
        return Rename(pruned, restricted) if restricted else pruned


# ----------------------------------------------------------------------
# Pass 2: greedy join reordering
# ----------------------------------------------------------------------

_REORDER_RULE_NAME = "reorder-joins"


def _rebuild_join(original: Query, leaves: "List[Query]") -> Query:
    """Rebuild ``original``'s join shape with ``leaves`` consumed in order."""
    if isinstance(original, Join):
        left = _rebuild_join(original.left, leaves)
        right = _rebuild_join(original.right, leaves)
        return Join(left, right)
    return leaves.pop(0)


def _joined_rows_estimate(
    left: Estimate,
    left_attrs: frozenset,
    right: Estimate,
    right_attrs: frozenset,
) -> float:
    rows = left.rows * right.rows
    for attribute in left_attrs & right_attrs:
        rows /= max(left.distinct_of(attribute), right.distinct_of(attribute))
    return rows


def _merge_estimates(
    left: Estimate, right: Estimate, rows: float
) -> Estimate:
    distinct: Dict[str, float] = dict(left.distinct)
    for attribute, d in right.distinct.items():
        distinct[attribute] = (
            min(distinct[attribute], d) if attribute in distinct else d
        )
    return Estimate(rows, distinct)


def _greedy_join_order(
    estimates: Sequence[Estimate], attr_sets: Sequence[frozenset]
) -> List[int]:
    """Leaf indices in greedy order: start smallest, then always join the
    leaf minimizing the estimated intermediate size (ties: input order)."""
    remaining = list(range(len(estimates)))
    start = min(remaining, key=lambda i: (estimates[i].rows, i))
    remaining.remove(start)
    order = [start]
    current = estimates[start]
    current_attrs = attr_sets[start]
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                _joined_rows_estimate(
                    current, current_attrs, estimates[i], attr_sets[i]
                ),
                i,
            ),
        )
        remaining.remove(best)
        rows = _joined_rows_estimate(
            current, current_attrs, estimates[best], attr_sets[best]
        )
        current = _merge_estimates(current, estimates[best], rows)
        current_attrs = current_attrs | attr_sets[best]
        order.append(best)
    return order


def _reorder_bush(node: Join, ctx: RewriteContext) -> Query:
    """Reorder one maximal join bush greedily by estimated output size."""
    original = flatten_join(node)
    leaves = [_reorder_pass(leaf, ctx) for leaf in original]
    untouched = all(new is old for new, old in zip(leaves, original))
    if len(leaves) < 3:
        # A two-operand join has nothing to reorder: both sides are
        # iterated once either way, and swapping would only add a
        # permutation projection (and force statistics collection).
        return node if untouched else _rebuild_join(node, list(leaves))
    estimates = [ctx.estimate(leaf) for leaf in leaves]
    attr_sets = [frozenset(ctx.schema(leaf).attributes) for leaf in leaves]
    order = _greedy_join_order(estimates, attr_sets)
    if order == list(range(len(leaves))):
        return node if untouched else _rebuild_join(node, list(leaves))
    reordered: Query = leaves[order[0]]
    for index in order[1:]:
        reordered = Join(reordered, leaves[index])
    original_attrs = node.output_schema(ctx.catalog).attributes
    if ctx.schema(reordered).attributes != original_attrs:
        reordered = Project(reordered, original_attrs)
    ctx.record(_REORDER_RULE_NAME)
    return reordered


def _reorder_pass(node: Query, ctx: RewriteContext) -> Query:
    if isinstance(node, Join):
        return _reorder_bush(node, ctx)
    children = node.children
    if not children:
        return node
    rewritten = [_reorder_pass(child, ctx) for child in children]
    if all(new is old for new, old in zip(rewritten, children)):
        return node
    return node.with_children(rewritten)


# ----------------------------------------------------------------------
# The fixpoint driver and the staged pipeline
# ----------------------------------------------------------------------

PUSHDOWN_RULES: Tuple[Rule, ...] = (
    DropTrueSelect(),
    MergeSelects(),
    MergeProjects(),
    PushSelectThroughProject(),
    PushSelectThroughRename(),
    PushSelectThroughUnion(),
    PushSelectThroughJoin(),
)

PRUNING_RULES: Tuple[Rule, ...] = (
    MergeProjects(),
    PushProjectThroughUnion(),
    PruneJoinColumns(),
    PruneSelectColumns(),
    PruneRenameColumns(),
)


def _rewrite_node(node: Query, rules: Sequence[Rule], ctx: RewriteContext) -> Query:
    """Rewrite one subtree bottom-up, applying rules at each node."""
    children = node.children
    if children:
        rewritten = [_rewrite_node(child, rules, ctx) for child in children]
        if any(new is not old for new, old in zip(rewritten, children)):
            node = node.with_children(rewritten)
    for _ in range(_MAX_PASSES):
        for rule in rules:
            replacement = rule.apply(node, ctx)
            if replacement is not None and replacement != node:
                ctx.record(rule.name)
                node = replacement
                break
        else:
            return node
    return node  # pragma: no cover - pass cap; rules converge by design


def _fixpoint(query: Query, rules: Sequence[Rule], ctx: RewriteContext) -> Query:
    """Apply ``rules`` bottom-up until a full pass fires nothing.

    Rules report firing through :meth:`RewriteContext.record`, so a quiet
    pass is detected without re-comparing whole trees.
    """
    for _ in range(_MAX_PASSES):
        ctx.changed = False
        query = _rewrite_node(query, rules, ctx)
        if not ctx.changed:
            return query
    return query  # pragma: no cover - pass cap; rules converge by design


def optimize(
    query: Query,
    catalog: Mapping[str, Schema],
    stats: "TableStatistics | Callable[[], TableStatistics] | None" = None,
    level: int = DEFAULT_OPTIMIZER_LEVEL,
) -> OptimizationResult:
    """Rewrite ``query`` through the staged rule pipeline.

    ``level`` 0 returns the query unchanged; any higher level runs all
    three passes — each skipped outright when the query lacks the operator
    the pass targets (no selections → no pushdown, no joins → no
    reordering, no projections → no pruning).  ``stats`` may be a
    :class:`TableStatistics` or a lazy callable producing one (see
    :class:`RewriteContext`).  ``query`` must already be well-typed over
    ``catalog`` (:func:`repro.algebra.plan.compile_plan` validates before
    optimizing).
    """
    if level <= 0:
        return OptimizationResult(query, ())
    ctx = RewriteContext(catalog, stats)
    operators = query.operators()
    rewritten = query
    if "S" in operators:
        rewritten = _fixpoint(rewritten, PUSHDOWN_RULES, ctx)
    if "J" in operators:
        rewritten = _reorder_pass(rewritten, ctx)
    # Reordering can introduce a permutation projection, so re-read the
    # operator set before deciding whether the pruning pass can fire.
    if "P" in rewritten.operators():
        rewritten = _fixpoint(rewritten, PRUNING_RULES, ctx)
    return OptimizationResult(rewritten, tuple(ctx.applied))
