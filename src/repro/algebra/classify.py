"""Query classification.

The paper's dichotomy theorems are stated per *query class*: the subset of
operator letters {S, P, J, U} a query uses (renaming δ is tracked separately
— Theorem 2.7 needs it, and the polynomial algorithms tolerate it).  This
module detects:

* which operators a query uses (:func:`query_class`),
* membership in the named fragments (SP, SJ, SPU, SJU, PJ, JU, ...),
* whether a query is in the paper's *normal form* — a union of
  select-project-join branches over (possibly renamed) base relations,
* whether a normal-form PJ query is a *chain join* (Theorem 2.6).

The deletion and annotation dispatchers use these predicates to route each
problem instance to the algorithm the dichotomy tables promise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import QueryClassError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.schema import Schema

__all__ = [
    "query_class",
    "uses_only",
    "involves",
    "is_sp",
    "is_sj",
    "is_spu",
    "is_sju",
    "involves_pj",
    "involves_ju",
    "flatten_union",
    "flatten_join",
    "branch_parts",
    "is_normal_form",
    "assert_normal_form",
    "chain_join_order",
]


def query_class(query: Query, include_rename: bool = False) -> str:
    """The query's class string, e.g. ``"PJ"`` or ``"SPJU"``.

    Letters appear in the canonical order S, P, J, U (and R last when
    ``include_rename``).  A bare relation reference yields ``""``.
    """
    ops = query.operators()
    order = "SPJU" + ("R" if include_rename else "")
    return "".join(letter for letter in order if letter in ops)


def uses_only(query: Query, letters: str, allow_rename: bool = True) -> bool:
    """True if the query uses no operators outside ``letters``.

    ``allow_rename`` controls whether δ is tolerated; the paper's polynomial
    algorithms are insensitive to renaming, so it defaults to True.
    """
    allowed = set(letters)
    if allow_rename:
        allowed.add("R")
    return query.operators() <= allowed


def involves(query: Query, letters: str) -> bool:
    """True if the query uses *all* of the operators in ``letters``.

    Matches the paper's phrasing "queries involving PJ" — both projection and
    join occur somewhere in the query.
    """
    return set(letters) <= query.operators()


def is_sp(query: Query, allow_rename: bool = True) -> bool:
    """Membership in the SP fragment (select/project only)."""
    return uses_only(query, "SP", allow_rename)


def is_sj(query: Query, allow_rename: bool = True) -> bool:
    """Membership in the SJ fragment (select/join only)."""
    return uses_only(query, "SJ", allow_rename)


def is_spu(query: Query, allow_rename: bool = True) -> bool:
    """Membership in the SPU fragment (no joins)."""
    return uses_only(query, "SPU", allow_rename)


def is_sju(query: Query, allow_rename: bool = True) -> bool:
    """Membership in the SJU fragment (no projection)."""
    return uses_only(query, "SJU", allow_rename)


def involves_pj(query: Query) -> bool:
    """True if the query uses both projection and join (the hard class)."""
    return involves(query, "PJ")


def involves_ju(query: Query) -> bool:
    """True if the query uses both join and union (the other hard class)."""
    return involves(query, "JU")


# ----------------------------------------------------------------------
# Normal form
# ----------------------------------------------------------------------

def flatten_union(query: Query) -> List[Query]:
    """The maximal list of union-free branches of a union tree.

    ``A ∪ (B ∪ C)`` flattens to ``[A, B, C]``; a union-free query flattens to
    ``[query]``.
    """
    if isinstance(query, Union):
        return flatten_union(query.left) + flatten_union(query.right)
    return [query]


def flatten_join(query: Query) -> List[Query]:
    """The leaves of a join tree, left to right.

    A join-free query is its own single leaf.
    """
    if isinstance(query, Join):
        return flatten_join(query.left) + flatten_join(query.right)
    return [query]


def _is_leaf(query: Query) -> bool:
    """A normal-form leaf: a base relation under zero or more renamings."""
    node = query
    while isinstance(node, Rename):
        node = node.child
    return isinstance(node, RelationRef)


def _leaf_relation(query: Query) -> RelationRef:
    """The base relation under a normal-form leaf's renamings."""
    node = query
    while isinstance(node, Rename):
        node = node.child
    if not isinstance(node, RelationRef):
        raise QueryClassError(f"{query!r} is not a normal-form leaf")
    return node


def _is_join_tree(query: Query) -> bool:
    """True if every node below is a Join or a normal-form leaf."""
    if isinstance(query, Join):
        return _is_join_tree(query.left) and _is_join_tree(query.right)
    return _is_leaf(query)


def _is_spj_branch(query: Query) -> bool:
    """A normal-form branch: ``Π_B?(σ_C?(join tree of leaves))``."""
    node = query
    if isinstance(node, Project):
        node = node.child
    if isinstance(node, Select):
        node = node.child
    return _is_join_tree(node)


def branch_parts(
    branch: Query,
) -> Tuple[Optional[Project], Optional[Select], List[Query]]:
    """Decompose a normal-form branch into (project, select, join leaves).

    Returns the Project node (or None), the Select node (or None), and the
    list of leaf queries of the join tree.  Raises :class:`QueryClassError`
    if the branch is not in normal form.
    """
    if not _is_spj_branch(branch):
        raise QueryClassError(f"query branch not in SPJ normal form: {branch!r}")
    project: Optional[Project] = None
    select: Optional[Select] = None
    node = branch
    if isinstance(node, Project):
        project = node
        node = node.child
    if isinstance(node, Select):
        select = node
        node = node.child
    return project, select, flatten_join(node)


def is_normal_form(query: Query) -> bool:
    """True if the query is a union of SPJ normal-form branches.

    This is the shape the paper's theorems are stated over: unions at the
    top; each branch an optional projection over an optional selection over a
    join tree of (possibly renamed) base relations.
    """
    return all(_is_spj_branch(b) for b in flatten_union(query))


def assert_normal_form(query: Query) -> None:
    """Raise :class:`QueryClassError` unless ``query`` is in normal form."""
    if not is_normal_form(query):
        raise QueryClassError(
            f"query is not in normal form (union of SPJ branches): {query!r}; "
            "apply repro.algebra.normalize.normalize first"
        )


# ----------------------------------------------------------------------
# Chain joins (Theorem 2.6)
# ----------------------------------------------------------------------

def chain_join_order(
    query: Query, catalog: Mapping[str, Schema]
) -> Optional[List[Query]]:
    """If the query is a normal-form chain-join PJ query, return the chain.

    A join on k distinct relations R1..Rk is a *chain join* when the attribute
    sets of Ri and Rj are disjoint for j > i + 1 — only consecutive relations
    share attributes.  We search for an ordering of the join leaves with this
    property by examining the attribute-sharing graph: a valid chain ordering
    exists iff that graph is a simple path (isolated leaf pairs allowed only
    for k <= 2).

    Returns the ordered list of leaf queries, or None when the query is not a
    chain join (not normal form, repeated relations, or no path ordering).
    """
    branches = flatten_union(query)
    if len(branches) != 1:
        return None
    try:
        _, _, leaves = branch_parts(branches[0])
    except QueryClassError:
        return None
    names = [_leaf_relation(leaf).name for leaf in leaves]
    if len(set(names)) != len(names):
        return None  # chain joins are over distinct relations
    if len(leaves) == 1:
        return list(leaves)

    schemas = [set(leaf.output_schema(catalog).attributes) for leaf in leaves]
    k = len(leaves)
    # Build the attribute-sharing graph.
    adjacency: Dict[int, set] = {i: set() for i in range(k)}
    for i in range(k):
        for j in range(i + 1, k):
            if schemas[i] & schemas[j]:
                adjacency[i].add(j)
                adjacency[j].add(i)

    order = _path_order(adjacency, k)
    if order is None:
        return None
    # Verify the chain property: non-consecutive relations share nothing.
    for i in range(k):
        for j in range(i + 2, k):
            if schemas[order[i]] & schemas[order[j]]:
                return None
    return [leaves[i] for i in order]


def _path_order(adjacency: Dict[int, set], k: int) -> Optional[List[int]]:
    """Order the vertices of a graph along a Hamiltonian path if the graph
    is itself a simple path; otherwise return None."""
    degrees = {v: len(adjacency[v]) for v in adjacency}
    if k == 1:
        return [0]
    ends = [v for v, d in degrees.items() if d == 1]
    if len(ends) != 2 or any(d > 2 for d in degrees.values()):
        return None
    order = [ends[0]]
    seen = {ends[0]}
    while len(order) < k:
        nxt = [v for v in adjacency[order[-1]] if v not in seen]
        if len(nxt) != 1:
            return None
        order.append(nxt[0])
        seen.add(nxt[0])
    return order


def leaf_base_name(leaf: Query) -> str:
    """The base relation name under a normal-form leaf (public helper)."""
    return _leaf_relation(leaf).name
