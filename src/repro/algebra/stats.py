"""Table statistics and cardinality estimation for the plan optimizer.

The rule-based logical rewriter (:mod:`repro.algebra.optimizer`) needs two
things the catalog alone cannot provide: how large each base relation is,
and how selective a predicate or join key is likely to be.  This module
computes both from a :class:`~repro.algebra.relation.Database`:

* :class:`RelationStats` — exact row count and per-column distinct counts of
  one relation (cheap: one pass over the rows);
* :class:`TableStatistics` — the catalog-wide collection, restrictable to
  the relations one query touches;
* :func:`estimate_query` — the classical System-R style cardinality model
  over the SPJRU algebra: equality selectivity ``1/distinct``, join
  cardinality ``|L|·|R| / ∏ max(dL(a), dR(a))`` over the shared attributes,
  projection capped by the product of the kept columns' distinct counts.

Estimates are *heuristics*, used only to rank alternative plans (join
orders); correctness never depends on them — the soundness property tests
compare optimized and unoptimized plans row-for-row and mask-for-mask.

Because optimized plans depend on cardinalities, the plan memo
(:mod:`repro.provenance.cache`) must not serve a plan optimized against a
grossly different database.  :func:`stats_version` provides the invalidation
key: per-relation row counts bucketed by powers of two, so the thousands of
hypothetical databases the deletion solvers derive with
``Database.delete`` (which change counts by a handful of rows) share one
compiled plan, while an order-of-magnitude change recompiles.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import (
    And,
    AttributeRef,
    Comparison,
    Constant,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import Schema

__all__ = [
    "RelationStats",
    "MaintainedStatistics",
    "TableStatistics",
    "Estimate",
    "estimate_query",
    "selectivity",
    "stats_version",
]

#: Assumed row count for relations the statistics have never seen.
DEFAULT_ROWS = 1000

#: Assumed distinct count for columns the statistics have never seen.
DEFAULT_DISTINCT = 10

#: Selectivity assumed for range comparisons (<, <=, >, >=) and unknown
#: predicate shapes — the textbook 1/3.
RANGE_SELECTIVITY = 1.0 / 3.0


class RelationStats:
    """Row count and per-column distinct counts of one relation."""

    __slots__ = ("rows", "distinct")

    def __init__(self, rows: int, distinct: Mapping[str, int]):
        self.rows = int(rows)
        self.distinct: Dict[str, int] = {a: int(d) for a, d in distinct.items()}

    @classmethod
    def from_relation(cls, relation: Relation) -> "RelationStats":
        """Exact statistics from one pass over the relation's rows."""
        attrs = relation.schema.attributes
        columns: Tuple[set, ...] = tuple(set() for _ in attrs)
        for row in relation.rows:
            for column, value in zip(columns, row):
                column.add(value)
        return cls(
            len(relation), {a: len(c) for a, c in zip(attrs, columns)}
        )

    def distinct_of(self, attribute: str) -> int:
        """Distinct count of ``attribute`` (≥ 1; default when unknown)."""
        d = self.distinct.get(attribute, DEFAULT_DISTINCT)
        return max(1, min(d, max(self.rows, 1)))

    def __repr__(self) -> str:
        return f"RelationStats(rows={self.rows}, distinct={self.distinct!r})"


class TableStatistics:
    """Per-relation statistics for the relations a query may touch.

    Missing relations fall back to :data:`DEFAULT_ROWS` /
    :data:`DEFAULT_DISTINCT`, so the optimizer degrades to uniform
    assumptions instead of failing when no statistics are available.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Mapping[str, RelationStats] = ()):
        self._relations: Dict[str, RelationStats] = dict(relations or {})

    @classmethod
    def from_database(
        cls, db: Database, names: Optional[Iterable[str]] = None
    ) -> "TableStatistics":
        """Collect statistics for ``names`` (default: every relation)."""
        wanted = db.names() if names is None else tuple(names)
        return cls(
            {
                name: RelationStats.from_relation(db[name])
                for name in wanted
                if name in db
            }
        )

    def relation(self, name: str) -> RelationStats:
        """Statistics for ``name`` (a default object when unknown)."""
        stats = self._relations.get(name)
        if stats is None:
            return RelationStats(DEFAULT_ROWS, {})
        return stats

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        return f"TableStatistics({sorted(self._relations)!r})"


class MaintainedStatistics:
    """Statistics kept current under deltas instead of recomputed.

    The write path applies many small deltas; recollecting
    :class:`TableStatistics` per write is a full pass over every relation.
    This class keeps, per relation, the exact row count plus a per-column
    ``value -> multiplicity`` multiset, so deletes and inserts are O(delta)
    and distinct counts stay exact (a value's distinct contribution only
    drops when its last occurrence does).

    :meth:`snapshot` produces a :class:`TableStatistics` equal to a fresh
    :meth:`TableStatistics.from_database` collection, and :meth:`version`
    matches :func:`stats_version` — so the compiled-plan memo keyed on the
    version tuple survives every write that keeps each relation's row count
    inside its power-of-two bucket.
    """

    __slots__ = ("_rows", "_columns", "_attrs")

    def __init__(self, db: Database):
        #: name -> exact row count.
        self._rows: Dict[str, int] = {}
        #: name -> one value->count multiset per column position.
        self._columns: Dict[str, Tuple[Dict[object, int], ...]] = {}
        #: name -> schema attribute names (column order).
        self._attrs: Dict[str, Tuple[str, ...]] = {}
        for name in db.names():
            relation = db[name]
            counts: Tuple[Dict[object, int], ...] = tuple(
                {} for _ in relation.schema.attributes
            )
            for row in relation.rows:
                for column, value in zip(counts, row):
                    column[value] = column.get(value, 0) + 1
            self._rows[name] = len(relation)
            self._columns[name] = counts
            self._attrs[name] = relation.schema.attributes

    def apply_delta(
        self,
        deletions: "Iterable[tuple[str, Tuple[object, ...]]]" = (),
        inserts: "Iterable[tuple[str, Tuple[object, ...]]]" = (),
    ) -> Tuple[str, ...]:
        """Apply *effective* deltas; the relations whose log2 bucket changed.

        Callers must pass only rows actually removed / actually added (the
        versioned write path normalizes its deltas first) — counts would
        drift otherwise.  The return value is what decides whether the
        plan-memo ``stats_version`` key moves.
        """
        before = dict(self._rows)
        for name, row in deletions:
            self._rows[name] -= 1
            for column, value in zip(self._columns[name], row):
                remaining = column[value] - 1
                if remaining:
                    column[value] = remaining
                else:
                    del column[value]
        for name, row in inserts:
            self._rows[name] += 1
            for column, value in zip(self._columns[name], row):
                column[value] = column.get(value, 0) + 1
        return tuple(
            sorted(
                name
                for name, count in self._rows.items()
                if count.bit_length() != before[name].bit_length()
            )
        )

    def rows_of(self, name: str) -> int:
        """Exact current row count of ``name`` (KeyError when unknown)."""
        return self._rows[name]

    def snapshot(self) -> TableStatistics:
        """A :class:`TableStatistics` equal to a fresh full collection."""
        return TableStatistics(
            {
                name: RelationStats(
                    self._rows[name],
                    {
                        attr: len(column)
                        for attr, column in zip(
                            self._attrs[name], self._columns[name]
                        )
                    },
                )
                for name in self._rows
            }
        )

    def version(self, names: Iterable[str]) -> Tuple:
        """The same tuple :func:`stats_version` computes from the database."""
        return tuple(
            (
                name,
                self._rows[name].bit_length() if name in self._rows else None,
            )
            for name in names
        )

    def __repr__(self) -> str:
        return f"MaintainedStatistics({sorted(self._rows)!r})"


def stats_version(db: Database, names: Iterable[str]) -> Tuple:
    """The statistics invalidation key for ``names`` over ``db``.

    Row counts are bucketed by ``int.bit_length`` (powers of two): deleting
    a handful of tuples — the deletion solvers' hypothetical databases —
    keeps the bucket, so those databases share one optimized plan, while a
    database whose cardinalities changed by ~2× or more gets a fresh
    compile.  Relations missing from the database contribute ``None`` (the
    compile will fail with the historical unknown-relation error anyway).
    """
    return tuple(
        (name, len(db[name]).bit_length() if name in db else None)
        for name in names
    )


# ----------------------------------------------------------------------
# Cardinality estimation
# ----------------------------------------------------------------------

class Estimate:
    """Estimated output of a query node: row count + per-attribute distincts."""

    __slots__ = ("rows", "distinct")

    def __init__(self, rows: float, distinct: Mapping[str, float]):
        self.rows = max(0.0, float(rows))
        cap = max(1.0, self.rows)
        self.distinct: Dict[str, float] = {
            a: max(1.0, min(float(d), cap)) for a, d in distinct.items()
        }

    def distinct_of(self, attribute: str) -> float:
        return self.distinct.get(attribute, float(DEFAULT_DISTINCT))

    def __repr__(self) -> str:
        return f"Estimate(rows={self.rows:.1f})"


def selectivity(predicate: Predicate, estimate: Estimate) -> float:
    """Estimated fraction of rows satisfying ``predicate``.

    The classical model: equality against a constant is ``1/distinct``,
    attribute-attribute equality ``1/max(d1, d2)``, ranges 1/3, with
    independence for conjunction and inclusion-exclusion for disjunction.
    """
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, estimate)
    if isinstance(predicate, And):
        return selectivity(predicate.left, estimate) * selectivity(
            predicate.right, estimate
        )
    if isinstance(predicate, Or):
        left = selectivity(predicate.left, estimate)
        right = selectivity(predicate.right, estimate)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, Not):
        return 1.0 - selectivity(predicate.child, estimate)
    return RANGE_SELECTIVITY


def _comparison_selectivity(comparison: Comparison, estimate: Estimate) -> float:
    left, right = comparison.left, comparison.right
    if comparison.op in ("<", "<=", ">", ">="):
        return RANGE_SELECTIVITY
    if isinstance(left, AttributeRef) and isinstance(right, Constant):
        eq = 1.0 / estimate.distinct_of(left.attribute)
    elif isinstance(left, Constant) and isinstance(right, AttributeRef):
        eq = 1.0 / estimate.distinct_of(right.attribute)
    elif isinstance(left, AttributeRef) and isinstance(right, AttributeRef):
        eq = 1.0 / max(
            estimate.distinct_of(left.attribute),
            estimate.distinct_of(right.attribute),
        )
    elif isinstance(left, Constant) and isinstance(right, Constant):
        eq = 1.0 if left.literal == right.literal else 0.0
    else:
        return RANGE_SELECTIVITY
    if comparison.op == "=":
        return min(1.0, eq)
    if comparison.op == "!=":
        return max(0.0, 1.0 - eq)
    return RANGE_SELECTIVITY  # pragma: no cover - ops are exhaustive above


def estimate_query(
    query: Query, catalog: Mapping[str, Schema], stats: TableStatistics
) -> Estimate:
    """Estimated cardinality (and distincts) of ``query`` over ``catalog``.

    The query must be well-typed over the catalog; schema errors propagate.
    """
    if isinstance(query, RelationRef):
        relation = stats.relation(query.name)
        schema = query.output_schema(catalog)
        return Estimate(
            max(relation.rows, 0),
            {a: relation.distinct_of(a) for a in schema.attributes},
        )

    if isinstance(query, Select):
        child = estimate_query(query.child, catalog, stats)
        fraction = min(1.0, max(0.0, selectivity(query.predicate, child)))
        return Estimate(child.rows * fraction, child.distinct)

    if isinstance(query, Project):
        child = estimate_query(query.child, catalog, stats)
        ceiling = 1.0
        for attribute in query.attributes:
            ceiling *= child.distinct_of(attribute)
            if ceiling >= child.rows:
                ceiling = child.rows
                break
        return Estimate(
            min(child.rows, max(ceiling, 1.0 if child.rows >= 1 else 0.0)),
            {a: child.distinct_of(a) for a in query.attributes},
        )

    if isinstance(query, Join):
        left = estimate_query(query.left, catalog, stats)
        right = estimate_query(query.right, catalog, stats)
        left_schema = query.left.output_schema(catalog)
        right_schema = query.right.output_schema(catalog)
        shared = left_schema.common(right_schema)
        rows = left.rows * right.rows
        for attribute in shared:
            rows /= max(
                left.distinct_of(attribute), right.distinct_of(attribute)
            )
        distinct: Dict[str, float] = dict(left.distinct)
        for attribute, d in right.distinct.items():
            distinct[attribute] = (
                min(distinct[attribute], d) if attribute in distinct else d
            )
        return Estimate(rows, distinct)

    if isinstance(query, Union):
        left = estimate_query(query.left, catalog, stats)
        right = estimate_query(query.right, catalog, stats)
        distinct = {
            a: left.distinct_of(a) + right.distinct_of(a)
            for a in query.left.output_schema(catalog).attributes
        }
        return Estimate(left.rows + right.rows, distinct)

    if isinstance(query, Rename):
        child = estimate_query(query.child, catalog, stats)
        mapping = query.mapping_dict
        return Estimate(
            child.rows,
            {mapping.get(a, a): d for a, d in child.distinct.items()},
        )

    # Unknown node: assume nothing beyond the default.
    return Estimate(DEFAULT_ROWS, {})
