"""Relations and databases under set semantics.

The paper's model is the classical set-semantics relational model: a relation
is a finite set of tuples over a schema, and a database is a finite map from
relation names to relations.  Both classes here are immutable; update
operations (``delete_tuples`` etc.) return new objects.  Immutability matters
because the deletion-propagation algorithms explore many hypothetical source
databases, and sharing the underlying ``frozenset`` objects keeps that cheap.

A *tuple* is a plain Python tuple of hashable atomic values, aligned with the
relation's schema order.  Tuple identity is value identity — the paper has no
tuple ids, and a *location* ``(R, t, A)`` identifies a field by the relation
name, the tuple's value, and an attribute name.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
)

from repro.errors import EvaluationError, SchemaError
from repro.algebra.schema import Schema

__all__ = ["Relation", "Database", "Row"]

#: A database row: a tuple of atomic (hashable) values.
Row = Tuple[object, ...]


def _freeze_rows(schema: Schema, rows: Iterable[Sequence[object]]) -> FrozenSet[Row]:
    """Validate and freeze an iterable of rows against ``schema``."""
    frozen = set()
    arity = schema.arity
    for row in rows:
        t = tuple(row)
        if len(t) != arity:
            raise SchemaError(
                f"row {t!r} has arity {len(t)}, schema expects {arity}"
            )
        for value in t:
            try:
                hash(value)
            except TypeError:
                raise SchemaError(
                    f"row {t!r} contains unhashable value {value!r}"
                ) from None
        frozen.add(t)
    return frozenset(frozen)


class Relation:
    """An immutable named relation: a schema plus a set of rows.

    >>> r = Relation("R", ["A", "B"], [("a", 1), ("b", 2)])
    >>> len(r)
    2
    >>> ("a", 1) in r
    True
    >>> r.value_of(("a", 1), "B")
    1
    """

    __slots__ = ("_name", "_schema", "_rows")

    def __init__(
        self,
        name: str,
        schema: "Schema | Sequence[str]",
        rows: Iterable[Sequence[object]] = (),
    ):
        if not isinstance(name, str) or not name:
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self._name = name
        self._schema = schema
        self._rows = _freeze_rows(schema, rows)

    @classmethod
    def _trusted(cls, name: str, schema: Schema, rows: FrozenSet[Row]) -> "Relation":
        """Internal constructor for pre-validated rows.

        ``rows`` must already be a frozenset of hashable tuples matching the
        schema's arity — operator outputs, snapshot restores, and columnar
        decodes qualify because their rows come from relations that were
        validated on public construction.  Skipping ``_freeze_rows`` here
        keeps those hot paths from re-validating every row.
        """
        relation = cls.__new__(cls)
        relation._name = name
        relation._schema = schema
        relation._rows = rows
        return relation

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation's name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of rows, as a frozenset of value tuples."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._name == other._name
            and self._schema == other._schema
            and self._rows == other._rows
        )

    def __hash__(self) -> int:
        return hash((self._name, self._schema, self._rows))

    def __repr__(self) -> str:
        return (
            f"Relation({self._name!r}, {list(self._schema.attributes)!r}, "
            f"{len(self._rows)} rows)"
        )

    def value_of(self, row: Row, attribute: str) -> object:
        """The value of ``attribute`` in ``row``.

        ``row`` need not be a member of the relation (the evaluator uses this
        on candidate rows), but must match the schema's arity.
        """
        idx = self._schema.index_of(attribute)
        if len(row) != self._schema.arity:
            raise SchemaError(
                f"row {row!r} does not match schema {self._schema.attributes}"
            )
        return row[idx]

    def sorted_rows(self) -> Tuple[Row, ...]:
        """Rows in a deterministic order (sorted by repr, then value).

        Used by renderers and benchmarks so output is reproducible across
        runs; hash randomization makes raw frozenset order unstable.
        """
        return tuple(sorted(self._rows, key=lambda r: tuple(map(_sort_key, r))))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_rows(self, rows: Iterable[Sequence[object]]) -> "Relation":
        """A copy of this relation with a different row set."""
        return Relation(self._name, self._schema, rows)

    def delete_rows(self, rows: Iterable[Row]) -> "Relation":
        """A copy of this relation with ``rows`` removed.

        Rows not present are ignored (deletion is idempotent).
        """
        doomed = {tuple(r) for r in rows}
        return Relation._trusted(self._name, self._schema, self._rows - doomed)

    def insert_rows(self, rows: Iterable[Sequence[object]]) -> "Relation":
        """A copy of this relation with ``rows`` added."""
        extra = _freeze_rows(self._schema, rows)
        return Relation._trusted(self._name, self._schema, self._rows | extra)

    def renamed(self, name: str) -> "Relation":
        """A copy of this relation carrying a different name."""
        return Relation._trusted(name, self._schema, self._rows)


def _sort_key(value: object) -> Tuple[str, str]:
    """Total order over heterogeneous atomic values for deterministic output."""
    return (type(value).__name__, repr(value))


class Database:
    """An immutable map from relation names to relations.

    >>> db = Database([Relation("R", ["A"], [(1,)])])
    >>> db["R"].schema.attributes
    ('A',)
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: "Iterable[Relation] | Mapping[str, Relation]" = ()):
        rels: Dict[str, Relation] = {}
        items: Iterable[Relation]
        if isinstance(relations, Mapping):
            items = relations.values()
        else:
            items = relations
        for rel in items:
            if not isinstance(rel, Relation):
                raise SchemaError(f"expected a Relation, got {rel!r}")
            if rel.name in rels:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            rels[rel.name] = rel
        self._relations = rels

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(
                f"database has no relation named {name!r}; "
                f"known relations: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relations(self) -> Tuple[Relation, ...]:
        """All relations, ordered by name."""
        return tuple(self._relations[n] for n in sorted(self._relations))

    def names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def total_rows(self) -> int:
        """Total number of rows across all relations (the size ``|S|``)."""
        return sum(len(r) for r in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}({len(self._relations[n])})" for n in sorted(self._relations))
        return f"Database({parts})"

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_relation(self, relation: Relation) -> "Database":
        """A copy of this database with ``relation`` added or replaced."""
        rels = dict(self._relations)
        rels[relation.name] = relation
        return Database(rels)

    def delete(self, deletions: "Iterable[tuple[str, Row]]") -> "Database":
        """A copy of this database with the given ``(relation, row)`` pairs removed.

        This is the source-update operation ``S \\ T`` of the paper: ``T`` is a
        set of source tuples, here identified by (relation name, row value).
        Unknown relation names raise :class:`EvaluationError`; missing rows are
        ignored.
        """
        by_rel: Dict[str, set] = {}
        for rel_name, row in deletions:
            if rel_name not in self._relations:
                raise EvaluationError(
                    f"cannot delete from unknown relation {rel_name!r}"
                )
            by_rel.setdefault(rel_name, set()).add(tuple(row))
        rels = dict(self._relations)
        for rel_name, rows in by_rel.items():
            rels[rel_name] = rels[rel_name].delete_rows(rows)
        return Database(rels)

    def insert(self, insertions: "Iterable[tuple[str, Row]]") -> "Database":
        """A copy of this database with the given ``(relation, row)`` pairs added.

        The mirror of :meth:`delete` for the write path.  Unknown relation
        names raise :class:`EvaluationError` (inserting cannot invent a
        schema); rows are validated against the target relation's schema and
        rows already present are ignored (set semantics).
        """
        by_rel: Dict[str, list] = {}
        for rel_name, row in insertions:
            if rel_name not in self._relations:
                raise EvaluationError(
                    f"cannot insert into unknown relation {rel_name!r}"
                )
            by_rel.setdefault(rel_name, []).append(tuple(row))
        rels = dict(self._relations)
        for rel_name, rows in by_rel.items():
            rels[rel_name] = rels[rel_name].insert_rows(rows)
        return Database(rels)

    def apply(
        self,
        deletions: "Iterable[tuple[str, Row]]" = (),
        inserts: "Iterable[tuple[str, Row]]" = (),
    ) -> "Database":
        """Delete then insert in one step: ``(S \\ T) ∪ T'``.

        Applying the deletions first means a pair appearing in both lists
        ends up *present* — the write-path convention the versioned delta
        log relies on.
        """
        return self.delete(deletions).insert(inserts)

    def all_source_tuples(self) -> Tuple[Tuple[str, Row], ...]:
        """Every ``(relation name, row)`` pair in the database, sorted.

        This enumerates the candidate deletion universe for the exact solvers.
        """
        out = []
        for name in sorted(self._relations):
            rel = self._relations[name]
            out.extend((name, row) for row in rel.sorted_rows())
        return tuple(out)
