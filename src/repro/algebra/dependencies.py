"""Functional dependencies and key constraints.

Section 2.1.1 of the paper remarks that the PJ hardness evaporates under key
constraints: *"most joins are performed on foreign keys.  It is easy to show
that project join queries based on key constraints (e.g. lossless joins with
respect to a set of functional dependencies) allow us to decide whether
there is a side-effect-free deletion in polynomial time."*

This module supplies the constraint substrate that remark needs:

* :class:`FunctionalDependency` — ``X → Y`` over attribute names;
* :func:`closure` — the attribute closure ``X⁺`` under a set of FDs
  (Armstrong's axioms via the standard fixpoint algorithm);
* :func:`is_key` / :func:`candidate_keys` — key detection for a schema;
* :func:`satisfies` / :func:`violations` — checking a concrete relation
  against declared FDs;
* :func:`implies` — FD implication via closure.

The polynomial key-based deletion algorithm built on top of this lives in
:mod:`repro.deletion.keyed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.algebra.relation import Relation, Row
from repro.algebra.schema import Schema

__all__ = [
    "FunctionalDependency",
    "closure",
    "implies",
    "is_key",
    "is_superkey",
    "candidate_keys",
    "satisfies",
    "violations",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``X → Y`` (determinant → dependent).

    >>> fd = FunctionalDependency(("group",), ("file",))
    >>> fd.determinant
    ('group',)
    """

    determinant: Tuple[str, ...]
    dependent: Tuple[str, ...]

    def __init__(self, determinant: Iterable[str], dependent: Iterable[str]):
        det = tuple(sorted(set(determinant)))
        dep = tuple(sorted(set(dependent)))
        if not det:
            raise SchemaError("a functional dependency needs a determinant")
        if not dep:
            raise SchemaError("a functional dependency needs a dependent")
        object.__setattr__(self, "determinant", det)
        object.__setattr__(self, "dependent", dep)

    def attributes(self) -> FrozenSet[str]:
        """All attributes the FD mentions."""
        return frozenset(self.determinant) | frozenset(self.dependent)

    def validate(self, schema: Schema) -> None:
        """Raise :class:`SchemaError` if the FD mentions unknown attributes."""
        for attr in self.attributes():
            schema.index_of(attr)

    def __repr__(self) -> str:
        return f"{{{', '.join(self.determinant)}}} -> {{{', '.join(self.dependent)}}}"


def closure(
    attributes: Iterable[str], fds: Sequence[FunctionalDependency]
) -> FrozenSet[str]:
    """The attribute closure ``X⁺`` under the given FDs.

    Standard fixpoint: repeatedly add the dependents of FDs whose
    determinants are contained in the current set.
    """
    result: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.determinant) <= result and not set(fd.dependent) <= result:
                result.update(fd.dependent)
                changed = True
    return frozenset(result)


def implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """True if ``fds ⊨ candidate`` (checked via the closure test)."""
    return set(candidate.dependent) <= closure(candidate.determinant, fds)


def is_superkey(
    attributes: Iterable[str],
    schema: Schema,
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True if the attributes functionally determine the whole schema."""
    return set(schema.attributes) <= closure(attributes, fds)


def is_key(
    attributes: Iterable[str],
    schema: Schema,
    fds: Sequence[FunctionalDependency],
) -> bool:
    """True if the attributes are a *minimal* superkey of the schema."""
    attrs = tuple(sorted(set(attributes)))
    if not is_superkey(attrs, schema, fds):
        return False
    return all(
        not is_superkey([a for a in attrs if a != dropped], schema, fds)
        for dropped in attrs
    )


def candidate_keys(
    schema: Schema, fds: Sequence[FunctionalDependency]
) -> List[FrozenSet[str]]:
    """All candidate keys of the schema, smallest first.

    Exponential in the schema arity in the worst case; relations in this
    library have small schemas, so a subset sweep is appropriate.
    """
    for fd in fds:
        fd.validate(schema)
    keys: List[FrozenSet[str]] = []
    for size in range(1, schema.arity + 1):
        for subset in combinations(schema.attributes, size):
            if any(key <= set(subset) for key in keys):
                continue  # already covered by a smaller key
            if is_superkey(subset, schema, fds):
                keys.append(frozenset(subset))
    return sorted(keys, key=lambda k: (len(k), sorted(k)))


def violations(
    relation: Relation, fd: FunctionalDependency
) -> List[Tuple[Row, Row]]:
    """Pairs of rows violating the FD (same determinant, different dependent)."""
    fd.validate(relation.schema)
    det_positions = relation.schema.positions(fd.determinant)
    dep_positions = relation.schema.positions(fd.dependent)
    seen: Dict[Tuple[object, ...], Tuple[Tuple[object, ...], Row]] = {}
    bad: List[Tuple[Row, Row]] = []
    for row in relation.sorted_rows():
        det = tuple(row[i] for i in det_positions)
        dep = tuple(row[i] for i in dep_positions)
        if det in seen:
            prior_dep, prior_row = seen[det]
            if prior_dep != dep:
                bad.append((prior_row, row))
        else:
            seen[det] = (dep, row)
    return bad


def satisfies(relation: Relation, fds: Sequence[FunctionalDependency]) -> bool:
    """True if the relation satisfies every FD."""
    return all(not violations(relation, fd) for fd in fds)
