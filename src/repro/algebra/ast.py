"""Query abstract syntax trees for the monotone SPJRU fragment.

The paper works over monotone relational queries built from five operators:

* **S**\\ election ``σ_C(E)``
* **P**\\ rojection ``Π_B(E)``
* **J**\\ oin (natural) ``E1 ⋈ E2``
* **U**\\ nion ``E1 ∪ E2``
* **R**\\ enaming ``δ_θ(E)``

plus references to base relations.  Query values are immutable and hashable;
rewrites (normalization) construct new trees.

Schema inference is static: ``output_schema(catalog)`` computes the result
schema given a catalog mapping base relation names to schemas, raising
:class:`SchemaError` for ill-typed queries (e.g. union of incompatible
schemas) before any data is touched.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.algebra.predicates import Predicate
from repro.algebra.schema import Schema

__all__ = [
    "Query",
    "RelationRef",
    "Select",
    "Project",
    "Join",
    "Union",
    "Rename",
    "OPERATOR_LETTERS",
]

#: Letters used to describe query classes, as in the paper ("SPJU", "PJ", ...).
OPERATOR_LETTERS = ("S", "P", "J", "U", "R")


class Query:
    """Abstract base class for query AST nodes."""

    __slots__ = ()

    #: The operator letter for this node ("S", "P", "J", "U", "R"), or None
    #: for base relation references.
    letter: "str | None" = None

    @property
    def children(self) -> Tuple["Query", ...]:
        """The direct subqueries of this node."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Query"]) -> "Query":
        """A copy of this node with its children replaced.

        Used by the normalizer's generic bottom-up rewriting.
        """
        raise NotImplementedError

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        """The schema of this query's result, given base-relation schemas."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Structural queries used by the classifier and the algorithms
    # ------------------------------------------------------------------
    def relation_names(self) -> FrozenSet[str]:
        """Names of all base relations referenced anywhere in the tree."""
        names: set = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, RelationRef):
                names.add(node.name)
            stack.extend(node.children)
        return frozenset(names)

    def operators(self) -> FrozenSet[str]:
        """The set of operator letters used anywhere in the tree.

        A bare relation reference uses no operators (empty set).
        """
        letters: set = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.letter is not None:
                letters.add(node.letter)
            stack.extend(node.children)
        return frozenset(letters)

    def subqueries(self) -> Tuple["Query", ...]:
        """All nodes in the tree, in pre-order."""
        out = []
        stack = [self]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return tuple(out)

    def size(self) -> int:
        """Number of nodes in the tree (a measure of query size)."""
        return len(self.subqueries())

    # Convenience constructors so examples read close to the algebra.
    def select(self, predicate: Predicate) -> "Select":
        """``σ_predicate(self)``"""
        return Select(self, predicate)

    def project(self, attributes: Sequence[str]) -> "Project":
        """``Π_attributes(self)``"""
        return Project(self, attributes)

    def join(self, other: "Query") -> "Join":
        """``self ⋈ other``"""
        return Join(self, other)

    def union(self, other: "Query") -> "Union":
        """``self ∪ other``"""
        return Union(self, other)

    def rename(self, mapping: Dict[str, str]) -> "Rename":
        """``δ_mapping(self)``"""
        return Rename(self, mapping)


class RelationRef(Query):
    """A reference to a base relation by name."""

    __slots__ = ("name",)

    letter = None

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise SchemaError(f"relation reference needs a non-empty name, got {name!r}")
        self.name = name

    @property
    def children(self) -> Tuple[Query, ...]:
        return ()

    def with_children(self, children: Sequence[Query]) -> "RelationRef":
        if children:
            raise SchemaError("RelationRef has no children")
        return self

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        try:
            return catalog[self.name]
        except KeyError:
            raise SchemaError(f"unknown base relation {self.name!r}") from None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("rel", self.name))

    def __repr__(self) -> str:
        return self.name


class Select(Query):
    """Selection ``σ_C(E)``: keep the rows of ``E`` satisfying ``C``."""

    __slots__ = ("child", "predicate")

    letter = "S"

    def __init__(self, child: Query, predicate: Predicate):
        if not isinstance(child, Query):
            raise SchemaError(f"Select child must be a Query, got {child!r}")
        if not isinstance(predicate, Predicate):
            raise SchemaError(f"Select predicate must be a Predicate, got {predicate!r}")
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Query]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        schema = self.child.output_schema(catalog)
        self.predicate.validate(schema)
        return schema

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Select)
            and other.child == self.child
            and other.predicate == self.predicate
        )

    def __hash__(self) -> int:
        return hash(("select", self.child, self.predicate))

    def __repr__(self) -> str:
        return f"SELECT[{self.predicate!r}]({self.child!r})"


class Project(Query):
    """Projection ``Π_B(E)``: keep only attributes ``B`` (set semantics)."""

    __slots__ = ("child", "attributes")

    letter = "P"

    def __init__(self, child: Query, attributes: Sequence[str]):
        if not isinstance(child, Query):
            raise SchemaError(f"Project child must be a Query, got {child!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("projection onto zero attributes is not supported")
        self.child = child
        self.attributes = attrs
        # Validate distinctness eagerly.
        Schema(attrs)

    @property
    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Query]) -> "Project":
        (child,) = children
        return Project(child, self.attributes)

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        return self.child.output_schema(catalog).project(self.attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Project)
            and other.child == self.child
            and other.attributes == self.attributes
        )

    def __hash__(self) -> int:
        return hash(("project", self.child, self.attributes))

    def __repr__(self) -> str:
        return f"PROJECT[{', '.join(self.attributes)}]({self.child!r})"


class Join(Query):
    """Natural join ``E1 ⋈ E2`` on the attributes the two schemas share.

    When the schemas share no attributes this degenerates to the cross
    product, exactly as in the standard definition.
    """

    __slots__ = ("left", "right")

    letter = "J"

    def __init__(self, left: Query, right: Query):
        if not isinstance(left, Query) or not isinstance(right, Query):
            raise SchemaError("Join operands must be Query values")
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Query]) -> "Join":
        left, right = children
        return Join(left, right)

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        return self.left.output_schema(catalog).join(self.right.output_schema(catalog))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Join) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("join", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} JOIN {self.right!r})"


class Union(Query):
    """Union ``E1 ∪ E2`` of two union-compatible queries.

    The operands must have the same *set* of attribute names; the result uses
    the left operand's attribute order and the right operand's rows are
    reordered to match.
    """

    __slots__ = ("left", "right")

    letter = "U"

    def __init__(self, left: Query, right: Query):
        if not isinstance(left, Query) or not isinstance(right, Query):
            raise SchemaError("Union operands must be Query values")
        self.left = left
        self.right = right

    @property
    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Query]) -> "Union":
        left, right = children
        return Union(left, right)

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        left = self.left.output_schema(catalog)
        right = self.right.output_schema(catalog)
        if not left.is_union_compatible(right):
            raise SchemaError(
                f"union of incompatible schemas {left.attributes} and {right.attributes}"
            )
        return left

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Union) and (other.left, other.right) == (self.left, self.right)

    def __hash__(self) -> int:
        return hash(("union", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} UNION {self.right!r})"


class Rename(Query):
    """Renaming ``δ_θ(E)``: rewrite attribute names via the mapping ``θ``.

    ``θ`` is given as a dict from old names to new names; attributes not
    mentioned keep their names.  The mapping must be injective on the child's
    schema (checked during schema inference).
    """

    __slots__ = ("child", "mapping")

    letter = "R"

    def __init__(self, child: Query, mapping: Mapping[str, str]):
        if not isinstance(child, Query):
            raise SchemaError(f"Rename child must be a Query, got {child!r}")
        items = tuple(sorted(mapping.items()))
        for old, new in items:
            if not isinstance(old, str) or not isinstance(new, str) or not old or not new:
                raise SchemaError(f"invalid rename pair {old!r} -> {new!r}")
        self.child = child
        self.mapping: Tuple[Tuple[str, str], ...] = items

    @property
    def mapping_dict(self) -> Dict[str, str]:
        """The renaming as a plain dict (old name → new name)."""
        return dict(self.mapping)

    @property
    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Query]) -> "Rename":
        (child,) = children
        return Rename(child, dict(self.mapping))

    def output_schema(self, catalog: Mapping[str, Schema]) -> Schema:
        return self.child.output_schema(catalog).rename(self.mapping_dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rename)
            and other.child == self.child
            and other.mapping == self.mapping
        )

    def __hash__(self) -> int:
        return hash(("rename", self.child, self.mapping))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping)
        return f"RENAME[{pairs}]({self.child!r})"
