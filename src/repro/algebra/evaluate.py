"""Set-semantics evaluation of SPJRU queries.

:func:`evaluate` runs a :class:`~repro.algebra.ast.Query` against a
:class:`~repro.algebra.relation.Database` and returns the view as a
:class:`~repro.algebra.relation.Relation`.  The semantics are the textbook
ones:

* selection filters rows by the predicate;
* projection keeps the named attributes and collapses duplicates (sets);
* natural join hash-joins on the shared attributes;
* union canonicalizes the right operand's attribute order to the left's;
* renaming relabels the schema without touching rows.

The public entry points are thin fronts over **compiled physical plans**
(:mod:`repro.algebra.plan`): the query is compiled once per (query, schema
catalog) — schema resolution, predicate binding, column positions, join keys
and union reorders all happen at compile time — and the plan is shared
through :func:`repro.provenance.cache.cached_plan`, so the deletion solvers'
thousands of re-evaluations against hypothetical databases pay only the
per-row work.

The original recursive interpreter is kept below as
:func:`interpret_view_rows` / ``_eval``: it resolves everything per call and
serves as the independent oracle for the compiled-plan equivalence tests,
the benchmark baseline, and the derivation tracer in
:mod:`repro.provenance.proof`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import EvaluationError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.plan import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema

__all__ = ["evaluate", "output_schema", "view_rows", "interpret_view_rows"]

#: Lazily bound plan supplier (the provenance cache imports this module, so
#: the import runs at first evaluation instead of module load).
_cached_plan = None


def _shared_plan(query: Query, db: Database):
    """The compiled plan of ``query`` over ``db``, via the shared cache."""
    global _cached_plan
    if _cached_plan is None:
        from repro.provenance.cache import cached_plan

        _cached_plan = cached_plan
    return _cached_plan(query, db)


def output_schema(query: Query, db: Database) -> Schema:
    """Static result schema of ``query`` over ``db``'s catalog."""
    catalog = {name: db[name].schema for name in db}
    return query.output_schema(catalog)


def evaluate(query: Query, db: Database, name: str = DEFAULT_VIEW_NAME) -> Relation:
    """Evaluate ``query`` against ``db``; return the view named ``name``.

    Raises :class:`EvaluationError` for references to missing relations and
    :class:`SchemaError` for ill-typed queries.  Both are raised by plan
    compilation, before any data is touched.
    """
    plan = _shared_plan(query, db)
    return plan.relation(db, name)


def view_rows(query: Query, db: Database) -> frozenset:
    """Evaluate ``query`` and return just the row set.

    This is the hot path for the exact solvers, which compare row sets of the
    view before and after hypothetical deletions and do not need a full
    :class:`Relation` object.
    """
    return _shared_plan(query, db).rows(db)


def interpret_view_rows(query: Query, db: Database) -> frozenset:
    """The row set by direct recursive interpretation (no compiled plan).

    Kept as the independent oracle: the interpreter re-resolves schemas and
    positions on every call, exactly as the seed evaluator did.  The
    equivalence property tests and ``benchmarks/bench_plan_compile.py``
    compare :func:`view_rows` against this.
    """
    _, rows = _eval(query, db)
    return frozenset(rows)


def _eval(query: Query, db: Database) -> Tuple[Schema, List[Row]]:
    """Recursive reference interpreter returning (schema, rows)."""
    if isinstance(query, RelationRef):
        rel = db[query.name]
        return rel.schema, list(rel.rows)

    if isinstance(query, Select):
        schema, rows = _eval(query.child, db)
        query.predicate.validate(schema)
        kept = [row for row in rows if query.predicate.evaluate(schema, row)]
        return schema, kept

    if isinstance(query, Project):
        schema, rows = _eval(query.child, db)
        out_schema = schema.project(query.attributes)
        positions = schema.positions(query.attributes)
        projected = {tuple(row[i] for i in positions) for row in rows}
        return out_schema, list(projected)

    if isinstance(query, Join):
        left_schema, left_rows = _eval(query.left, db)
        right_schema, right_rows = _eval(query.right, db)
        return _natural_join(left_schema, left_rows, right_schema, right_rows)

    if isinstance(query, Union):
        left_schema, left_rows = _eval(query.left, db)
        right_schema, right_rows = _eval(query.right, db)
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError(
                f"union of incompatible schemas {left_schema.attributes} "
                f"and {right_schema.attributes}"
            )
        reorder = right_schema.positions(left_schema.attributes)
        merged = set(left_rows)
        merged.update(tuple(row[i] for i in reorder) for row in right_rows)
        return left_schema, list(merged)

    if isinstance(query, Rename):
        schema, rows = _eval(query.child, db)
        return schema.rename(query.mapping_dict), rows

    raise EvaluationError(f"unknown query node {query!r}")


def _natural_join(
    left_schema: Schema,
    left_rows: List[Row],
    right_schema: Schema,
    right_rows: List[Row],
) -> Tuple[Schema, List[Row]]:
    """Hash-based natural join.

    Partitions the right rows by their shared-attribute key, then streams the
    left rows.  Degenerates to a cross product when no attributes are shared.
    """
    out_schema = left_schema.join(right_schema)
    shared = left_schema.common(right_schema)
    left_key = left_schema.positions(shared)
    right_key = right_schema.positions(shared)
    right_extra = [
        i for i, a in enumerate(right_schema.attributes) if a not in left_schema
    ]

    buckets: Dict[Tuple[object, ...], List[Row]] = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_key)
        buckets.setdefault(key, []).append(row)

    out: set = set()
    for lrow in left_rows:
        key = tuple(lrow[i] for i in left_key)
        for rrow in buckets.get(key, ()):
            out.add(lrow + tuple(rrow[i] for i in right_extra))
    return out_schema, list(out)


def join_components(
    schema_left: Schema, schema_right: Schema, row: Row
) -> Tuple[Row, Row]:
    """Split a joined row back into its left and right components.

    For a natural join, an output row determines both join operands uniquely:
    the left component is the row restricted to the left schema and the right
    component the row restricted to the right schema.  Provenance and
    annotation propagation both rely on this fact (the paper's join rule is
    stated via ``t.R1`` and ``t.R2``).
    """
    out_schema = schema_left.join(schema_right)
    left = tuple(row[out_schema.index_of(a)] for a in schema_left.attributes)
    right = tuple(row[out_schema.index_of(a)] for a in schema_right.attributes)
    return left, right
