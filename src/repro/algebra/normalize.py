"""Normalization of SPJRU queries (Theorem 3.1).

The paper states its theorems over queries *in normal form*: a union of
branches, each of the shape ``Π_B(σ_C(L1 ⋈ ... ⋈ Lk))`` where every leaf
``Li`` is a (possibly renamed) base relation.  Theorem 3.1 asserts that such
a normal form exists for every PSJRU query **and** that the rewriting
preserves the relation ``R(Q, S)`` between source locations and view
locations induced by the annotation-propagation rules.

The paper warns that *not* every classical equivalence preserves annotation
propagation — e.g. replacing a natural join with a selection over a cross
product (``Π_ACD(σ_{A=B}(R × S)) ≡ R ⋈ δ_{B→A}(S)``) changes which
annotations flow, because the rules use "equality of similarly named fields"
rather than explicit equality.  The rewrite system implemented here therefore
uses only the following R-preserving rules:

1. rename composition           ``δ_θ1(δ_θ2(E)) → δ_{θ1∘θ2}(E)``
2. rename past selection        ``δ_θ(σ_C(E)) → σ_{θ(C)}(δ_θ(E))``
3. rename past projection       ``δ_θ(Π_B(E)) → Π_{θ(B)}(δ_θ̂(E))``
4. rename past join             ``δ_θ(E1 ⋈ E2) → δ_{θ|E1}(E1) ⋈ δ_{θ|E2}(E2)``
5. distribution over union      for σ, Π, ⋈ (both sides) and δ
6. selection merging            ``σ_C1(σ_C2(E)) → σ_{C2 ∧ C1}(E)``
7. projection merging           ``Π_B1(Π_B2(E)) → Π_B1(E)``
8. selection past projection    ``σ_C(Π_B(E)) → Π_B(σ_C(E))``
9. selection past join          ``σ_C(E1) ⋈ E2 → σ_C(E1 ⋈ E2)``
10. projection past join        ``Π_B(E1) ⋈ E2 → Π_{B ∪ attrs(E2)}(E1' ⋈ E2)``
    where ``E1'`` freshly renames E1's *hidden* (projected-away) attributes
    so the join attributes are unchanged.

Rules 3, 4 and 10 need care with attribute collisions; hidden attributes are
renamed to globally fresh names (``_h1``, ``_h2``, ...).  Because hidden
attributes contribute no view locations, freshening them never changes
``R(Q, S)`` — this is verified by property-based tests
(``tests/test_normalize.py``).

The public entry point is :func:`normalize`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.predicates import Predicate, TruePredicate, conjoin
from repro.algebra.schema import Schema

__all__ = ["normalize", "simplify", "union_of"]


class _FreshNames:
    """Generator of attribute names guaranteed not to collide.

    Seeded with every name that occurs anywhere in the catalog or the query
    (projection lists and rename targets), so generated names are globally
    fresh.
    """

    def __init__(self, forbidden: Set[str]):
        self._forbidden = set(forbidden)
        self._counter = itertools.count(1)

    def fresh(self) -> str:
        while True:
            name = f"_h{next(self._counter)}"
            if name not in self._forbidden:
                self._forbidden.add(name)
                return name


def _collect_names(query: Query, catalog: Mapping[str, Schema]) -> Set[str]:
    """Every attribute name that can occur while rewriting ``query``."""
    names: Set[str] = set()
    for schema in catalog.values():
        names.update(schema.attributes)
    for node in query.subqueries():
        if isinstance(node, Project):
            names.update(node.attributes)
        elif isinstance(node, Rename):
            for old, new in node.mapping:
                names.add(old)
                names.add(new)
        elif isinstance(node, Select):
            names.update(node.predicate.attributes())
    return names


def union_of(branches: Sequence[Query]) -> Query:
    """Left-deep union of one or more branches."""
    if not branches:
        raise SchemaError("cannot build a union of zero branches")
    result = branches[0]
    for b in branches[1:]:
        result = Union(result, b)
    return result


# ----------------------------------------------------------------------
# Stage A: push renamings down to the leaves
# ----------------------------------------------------------------------

def _total(mapping: Dict[str, str], attr: str) -> str:
    """Apply a partial renaming, treating missing keys as identity."""
    return mapping.get(attr, attr)


def _restrict(mapping: Dict[str, str], attrs: Sequence[str]) -> Dict[str, str]:
    """Restrict a renaming to the given attributes, dropping identity pairs."""
    return {a: mapping[a] for a in attrs if a in mapping and mapping[a] != a}


def _push_renames(
    query: Query,
    pending: Dict[str, str],
    catalog: Mapping[str, Schema],
    fresh: _FreshNames,
) -> Query:
    """Rewrite ``δ_pending(query)`` with all renamings at the leaves."""
    if isinstance(query, RelationRef):
        schema = query.output_schema(catalog)
        mapping = _restrict(pending, schema.attributes)
        return Rename(query, mapping) if mapping else query

    if isinstance(query, Rename):
        # δ_pending(δ_θ(E)) = δ_{pending ∘ θ}(E); compose per source attribute.
        inner = query.mapping_dict
        child_schema = query.child.output_schema(catalog)
        composed: Dict[str, str] = {}
        for attr in child_schema.attributes:
            target = _total(pending, _total(inner, attr))
            if target != attr:
                composed[attr] = target
        return _push_renames(query.child, composed, catalog, fresh)

    if isinstance(query, Select):
        predicate = query.predicate.rename(pending) if pending else query.predicate
        return Select(_push_renames(query.child, pending, catalog, fresh), predicate)

    if isinstance(query, Project):
        child_schema = query.child.output_schema(catalog)
        new_attrs = tuple(_total(pending, a) for a in query.attributes)
        # Extend the renaming over hidden attributes; freshen any hidden
        # attribute whose (identity) name collides with a new visible name.
        extended = dict(_restrict(pending, query.attributes))
        visible_after = set(new_attrs)
        for attr in child_schema.attributes:
            if attr in query.attributes:
                continue
            if attr in visible_after or attr in extended.values():
                extended[attr] = fresh.fresh()
        return Project(
            _push_renames(query.child, extended, catalog, fresh), new_attrs
        )

    if isinstance(query, Join):
        left_schema = query.left.output_schema(catalog)
        right_schema = query.right.output_schema(catalog)
        left_map = _restrict(pending, left_schema.attributes)
        right_map = _restrict(pending, right_schema.attributes)
        return Join(
            _push_renames(query.left, left_map, catalog, fresh),
            _push_renames(query.right, right_map, catalog, fresh),
        )

    if isinstance(query, Union):
        left_schema = query.left.output_schema(catalog)
        right_schema = query.right.output_schema(catalog)
        left_map = _restrict(pending, left_schema.attributes)
        right_map = _restrict(pending, right_schema.attributes)
        return Union(
            _push_renames(query.left, left_map, catalog, fresh),
            _push_renames(query.right, right_map, catalog, fresh),
        )

    raise SchemaError(f"unknown query node {query!r}")


# ----------------------------------------------------------------------
# Stage B: lift unions to the top
# ----------------------------------------------------------------------

def _lift_unions(query: Query) -> List[Query]:
    """Return union-free branches whose union is equivalent to ``query``.

    Assumes renamings are already at the leaves.
    """
    if isinstance(query, Union):
        return _lift_unions(query.left) + _lift_unions(query.right)
    if isinstance(query, Select):
        return [Select(b, query.predicate) for b in _lift_unions(query.child)]
    if isinstance(query, Project):
        return [Project(b, query.attributes) for b in _lift_unions(query.child)]
    if isinstance(query, Join):
        lefts = _lift_unions(query.left)
        rights = _lift_unions(query.right)
        return [Join(l, r) for l in lefts for r in rights]
    # Leaves (RelationRef, Rename-over-leaf) are their own branch.
    return [query]


# ----------------------------------------------------------------------
# Stage C: canonicalize each union-free branch to Π?(σ?(join of leaves))
# ----------------------------------------------------------------------

class _Branch:
    """Canonical decomposition of a union-free branch.

    ``projection`` is the ordered output attribute list or None when the
    branch has no projection; ``predicate`` is the merged selection predicate
    (TruePredicate when none); ``tree`` is a pure join tree of leaves.
    """

    __slots__ = ("projection", "predicate", "tree")

    def __init__(
        self,
        projection: Optional[Tuple[str, ...]],
        predicate: Predicate,
        tree: Query,
    ):
        self.projection = projection
        self.predicate = predicate
        self.tree = tree

    def to_query(self) -> Query:
        """Rebuild the branch as ``Π_B?(σ_C?(tree))``."""
        node = self.tree
        if not isinstance(self.predicate, TruePredicate):
            node = Select(node, self.predicate)
        if self.projection is not None:
            node = Project(node, self.projection)
        return node


def _rename_tree_leaves(
    tree: Query,
    mapping: Dict[str, str],
    catalog: Mapping[str, Schema],
) -> Query:
    """Apply an attribute renaming to every leaf of a join tree.

    Only leaves whose schema contains a renamed attribute are touched;
    renames compose with any existing leaf rename.  Because the mapping is
    applied to *every* leaf holding the attribute, shared (join) attributes
    stay shared and the join structure is preserved.
    """
    if not mapping:
        return tree
    if isinstance(tree, Join):
        return Join(
            _rename_tree_leaves(tree.left, mapping, catalog),
            _rename_tree_leaves(tree.right, mapping, catalog),
        )
    schema = tree.output_schema(catalog)
    local = _restrict(mapping, schema.attributes)
    if not local:
        return tree
    if isinstance(tree, Rename):
        inner = tree.mapping_dict
        child_schema = tree.child.output_schema(catalog)
        composed: Dict[str, str] = {}
        for attr in child_schema.attributes:
            target = _total(local, _total(inner, attr))
            if target != attr:
                composed[attr] = target
        return Rename(tree.child, composed) if composed else tree.child
    return Rename(tree, local)


def _canonicalize_branch(
    branch: Query,
    catalog: Mapping[str, Schema],
    fresh: _FreshNames,
) -> _Branch:
    """Recursively flatten a union-free branch into a :class:`_Branch`."""
    if isinstance(branch, (RelationRef, Rename)):
        return _Branch(None, TruePredicate(), branch)

    if isinstance(branch, Select):
        inner = _canonicalize_branch(branch.child, catalog, fresh)
        # σ_C commutes below Π (rule 8) and merges with inner σ (rule 6).
        return _Branch(
            inner.projection,
            conjoin(inner.predicate, branch.predicate),
            inner.tree,
        )

    if isinstance(branch, Project):
        inner = _canonicalize_branch(branch.child, catalog, fresh)
        # Π_B1(Π_B2(E)) = Π_B1(E)  (rule 7); order follows the outer Π.
        return _Branch(tuple(branch.attributes), inner.predicate, inner.tree)

    if isinstance(branch, Join):
        left = _canonicalize_branch(branch.left, catalog, fresh)
        right = _canonicalize_branch(branch.right, catalog, fresh)
        return _merge_join(branch, left, right, catalog, fresh)

    raise SchemaError(f"unexpected node in union-free branch: {branch!r}")


def _merge_join(
    original: Join,
    left: _Branch,
    right: _Branch,
    catalog: Mapping[str, Schema],
    fresh: _FreshNames,
) -> _Branch:
    """Combine two canonical branches under a join (rules 9 and 10).

    Hidden attributes (those each side projects away) are freshened so the
    combined join tree joins on exactly the attributes the original query
    joined on.
    """
    left_tree_attrs = left.tree.output_schema(catalog).attributes
    right_tree_attrs = right.tree.output_schema(catalog).attributes
    left_visible = left.projection if left.projection is not None else left_tree_attrs
    right_visible = (
        right.projection if right.projection is not None else right_tree_attrs
    )
    left_hidden = [a for a in left_tree_attrs if a not in set(left_visible)]
    right_hidden = [a for a in right_tree_attrs if a not in set(right_visible)]

    # Freshen every hidden attribute: cheap, and guarantees no spurious join
    # attributes between hidden/hidden or hidden/visible names.
    left_freshen = {a: fresh.fresh() for a in left_hidden}
    right_freshen = {a: fresh.fresh() for a in right_hidden}

    left_tree = _rename_tree_leaves(left.tree, left_freshen, catalog)
    right_tree = _rename_tree_leaves(right.tree, right_freshen, catalog)
    left_pred = left.predicate.rename(left_freshen) if left_freshen else left.predicate
    right_pred = (
        right.predicate.rename(right_freshen) if right_freshen else right.predicate
    )

    tree = Join(left_tree, right_tree)
    predicate = conjoin(left_pred, right_pred)

    if left.projection is None and right.projection is None:
        projection: Optional[Tuple[str, ...]] = None
    else:
        # Output order of ``Π_Bl(L) ⋈ Π_Br(R)``: Bl then Br \ Bl.
        seen = set(left_visible)
        projection = tuple(left_visible) + tuple(
            a for a in right_visible if a not in seen
        )
    return _Branch(projection, predicate, tree)


# ----------------------------------------------------------------------
# Simplification and the public entry point
# ----------------------------------------------------------------------

def simplify(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Remove no-op operators: TRUE selections, identity renames, and
    identity projections (projections onto the child's full schema in
    order).

    These simplifications never change the result or the annotation
    relation; they matter because the classifier counts operator letters
    (a redundant ``Π`` onto all attributes would otherwise move an SJ query
    into the "involves PJ" class).
    """
    children = [simplify(c, catalog) for c in query.children]
    node = query.with_children(children) if children else query

    if isinstance(node, Select) and isinstance(node.predicate, TruePredicate):
        return node.child
    if isinstance(node, Rename):
        child_schema = node.child.output_schema(catalog)
        mapping = _restrict(node.mapping_dict, child_schema.attributes)
        if not mapping:
            return node.child
        if mapping != node.mapping_dict:
            return Rename(node.child, mapping)
        return node
    if isinstance(node, Project):
        child_schema = node.child.output_schema(catalog)
        if tuple(node.attributes) == child_schema.attributes:
            return node.child
        return node
    return node


def normalize(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Rewrite ``query`` into the paper's normal form.

    The result is a union of branches ``Π_B?(σ_C?(L1 ⋈ ... ⋈ Lk))`` with all
    renamings sitting directly on base relations.  The rewriting preserves
    both the query result on every database over ``catalog`` and the
    annotation relation ``R(Q, S)`` (Theorem 3.1); the test suite checks both
    properties on randomized queries and databases.
    """
    # Validate the query is well-typed before rewriting.
    query.output_schema(catalog)

    fresh = _FreshNames(_collect_names(query, catalog))
    no_renames = _push_renames(query, {}, catalog, fresh)
    branches = _lift_unions(no_renames)
    canonical = [
        _canonicalize_branch(branch, catalog, fresh).to_query()
        for branch in branches
    ]
    result = union_of(canonical)
    result = simplify(result, catalog)
    # Sanity: normalization must not change the output schema's attribute
    # *set*; order is also preserved by construction.
    assert set(result.output_schema(catalog).attributes) == set(
        query.output_schema(catalog).attributes
    )
    return result
