"""Versioned databases: the write path's epoch, delta log, and stats.

The library's :class:`~repro.algebra.relation.Database` stays immutable —
every cache in the system is identity-keyed on the snapshot object, and the
deletion solvers rely on cheap structural sharing.  What the write path
adds is a *versioned handle* over a succession of snapshots:

* :class:`DatabaseVersion` — a monotone per-database epoch token.  Every
  applied delta bumps the epoch, so snapshots, mmap attachments, and
  caches stamped with an epoch can detect staleness instead of silently
  serving stale answers (the accountable-log stance of PAPERS.md).
* :class:`Delta` — one applied write, *normalized to its net effect*:
  deleting an absent row or re-inserting a present one is a no-op under
  set semantics, and a row deleted and re-inserted in the same call never
  left the database.  Downstream incremental maintenance (witness-table
  patching, statistics) consumes exactly these net sets.
* :class:`VersionedDatabase` — the handle: current snapshot + epoch + a
  bounded log of applied deltas + :class:`~repro.algebra.stats.
  MaintainedStatistics` kept current in O(delta) per write.  When a write
  moves a relation's row count across a power-of-two bucket — the
  compiled-plan memo's ``stats_version`` key — the handle notes a version
  bump on the shared provenance cache; most writes don't, which is what
  lets compiled plans survive them.

Thread safety: mutation is guarded by a lock; readers grab the immutable
snapshot reference and work off it unversioned, exactly as before.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.algebra.relation import Database, Row
from repro.algebra.stats import MaintainedStatistics, TableStatistics
from repro.provenance.cache import provenance_cache

__all__ = ["DatabaseVersion", "Delta", "VersionedDatabase", "DEFAULT_LOG_LIMIT"]

#: How many applied deltas the handle's log retains (oldest dropped first).
DEFAULT_LOG_LIMIT = 256

#: One source tuple on the write path: (relation name, row value).
SourcePair = Tuple[str, Row]


class DatabaseVersion:
    """A monotone version token: which database lineage, at which epoch.

    Tokens from the same :class:`VersionedDatabase` are totally ordered by
    epoch; tokens from different handles never compare ordered (a snapshot
    of database A says nothing about database B's history).
    """

    __slots__ = ("name", "epoch")

    def __init__(self, name: str, epoch: int):
        self.name = name
        self.epoch = int(epoch)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseVersion):
            return NotImplemented
        return self.name == other.name and self.epoch == other.epoch

    def __hash__(self) -> int:
        return hash((self.name, self.epoch))

    def __lt__(self, other: "DatabaseVersion") -> bool:
        if not isinstance(other, DatabaseVersion):
            return NotImplemented
        if self.name != other.name:
            raise ValueError(
                f"versions of different databases are unordered: "
                f"{self.name!r} vs {other.name!r}"
            )
        return self.epoch < other.epoch

    def __repr__(self) -> str:
        return f"DatabaseVersion({self.name!r}, epoch={self.epoch})"


class Delta:
    """One applied write, normalized to its net effect.

    ``deletions`` are pairs that were present before and are absent after;
    ``inserts`` are pairs absent before and present after.  Both are
    sorted tuples, so a delta is a deterministic value.  ``epoch`` is the
    epoch the database reached *by applying* this delta.
    """

    __slots__ = ("epoch", "deletions", "inserts")

    def __init__(
        self,
        epoch: int,
        deletions: Iterable[SourcePair],
        inserts: Iterable[SourcePair],
    ):
        self.epoch = int(epoch)
        self.deletions: Tuple[SourcePair, ...] = tuple(
            sorted(deletions, key=repr)
        )
        self.inserts: Tuple[SourcePair, ...] = tuple(sorted(inserts, key=repr))

    def __bool__(self) -> bool:
        return bool(self.deletions or self.inserts)

    def touched_relations(self) -> Tuple[str, ...]:
        """Sorted names of the relations this delta changed."""
        return tuple(
            sorted(
                {name for name, _ in self.deletions}
                | {name for name, _ in self.inserts}
            )
        )

    def __repr__(self) -> str:
        return (
            f"Delta(epoch={self.epoch}, -{len(self.deletions)}, "
            f"+{len(self.inserts)})"
        )


def _normalize_pairs(
    pairs: Iterable[SourcePair], db: Database, verb: str
) -> "set[SourcePair]":
    """Freeze ``(name, row)`` pairs, rejecting unknown relation names."""
    out: "set[SourcePair]" = set()
    for name, row in pairs:
        if name not in db:
            raise EvaluationError(
                f"cannot {verb} unknown relation {name!r}; "
                f"known relations: {list(db.names())}"
            )
        out.add((name, tuple(row)))
    return out


class VersionedDatabase:
    """A mutable handle over a succession of immutable database snapshots."""

    __slots__ = ("_name", "_db", "_epoch", "_log", "_log_limit", "_stats", "_lock")

    def __init__(
        self,
        db: Database,
        name: str = "db",
        log_limit: int = DEFAULT_LOG_LIMIT,
    ):
        if not isinstance(db, Database):
            raise EvaluationError(f"expected a Database, got {db!r}")
        if log_limit < 0:
            raise ValueError("log_limit must be non-negative")
        self._name = name
        self._db = db
        self._epoch = 0
        self._log: List[Delta] = []
        self._log_limit = log_limit
        self._stats = MaintainedStatistics(db)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def db(self) -> Database:
        """The current immutable snapshot."""
        return self._db

    @property
    def epoch(self) -> int:
        """How many effective deltas have been applied."""
        return self._epoch

    @property
    def version(self) -> DatabaseVersion:
        """The current version token."""
        return DatabaseVersion(self._name, self._epoch)

    def log(self) -> Tuple[Delta, ...]:
        """The retained applied-delta log, oldest first."""
        with self._lock:
            return tuple(self._log)

    def statistics(self) -> TableStatistics:
        """Maintained statistics, equal to a fresh full collection."""
        return self._stats.snapshot()

    def stats_version(self, names: Iterable[str]) -> Tuple:
        """The plan-memo key tuple, from the maintained counts."""
        return self._stats.version(names)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        deletions: Iterable[SourcePair] = (),
        inserts: Iterable[SourcePair] = (),
    ) -> Delta:
        """Apply a write; the normalized :class:`Delta` that took effect.

        Validation happens before any state moves: an unknown relation
        name raises :class:`~repro.errors.EvaluationError` and leaves the
        handle untouched.  A write whose net effect is empty returns a
        falsy delta and does **not** bump the epoch — nothing changed, so
        nothing downstream needs invalidating.
        """
        with self._lock:
            db = self._db
            del_pairs = _normalize_pairs(deletions, db, "delete from")
            ins_pairs = _normalize_pairs(inserts, db, "insert into")
            # Arity/hashability of genuinely new rows is checked by
            # Relation.insert_rows below, before any state moves.
            removed = {
                (name, row) for name, row in del_pairs if row in db[name].rows
            }
            # Delete-then-insert semantics: a pair in both lists stays
            # present, so only rows absent *before* are net inserts.
            removed -= ins_pairs
            added = {
                (name, row)
                for name, row in ins_pairs
                if row not in db[name].rows
            }
            if not removed and not added:
                return Delta(self._epoch, (), ())
            new_db = db.apply(removed, added)
            bumped = self._stats.apply_delta(removed, added)
            for _name in bumped:
                provenance_cache.note_version_bump()
            self._epoch += 1
            delta = Delta(self._epoch, removed, added)
            self._db = new_db
            if self._log_limit:
                self._log.append(delta)
                while len(self._log) > self._log_limit:
                    del self._log[0]
            return delta

    def __repr__(self) -> str:
        return (
            f"VersionedDatabase({self._name!r}, epoch={self._epoch}, "
            f"{self._db!r})"
        )
