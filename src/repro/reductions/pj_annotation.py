"""Theorem 3.2: 3SAT → side-effect-free annotation for a PJ view.

The annotation-placement hardness construction.  Given a 3SAT instance with
clauses ``C1..Cm`` (clause ``Ci`` over distinct variables ``v1 < v2 < v3``):

* relation ``Ri(Ci, x_{v1}, x_{v2}, x_{v3})`` holds the **seven** assignment
  tuples ``(c_i, t1, t2, t3)`` — one per truth combination satisfying the
  clause — plus a dummy tuple ``(c_i, d, d, d)``; the last relation ``Rm``
  additionally holds ``(c'_m, d, d, d)``;
* the query is ``Π_{C1,...,Cm}(R1 ⋈ ... ⋈ Rm)`` — relations join on shared
  variable columns;
* the view is ``{(c_1, ..., c_m), (c_1, ..., c'_m)}`` and we are asked to
  annotate the **first** component of the **first** tuple, i.e. location
  ``(Q(S), (c_1, ..., c_m), C1)``.

Candidates are the ``C1`` fields of ``R1``'s tuples.  Annotating the dummy
``(c_1, d, d, d)`` always spreads to both view tuples (the all-dummy
derivation produces both).  An assignment tuple reaches the view at all iff
it extends to a satisfying assignment, and then it annotates only the first
tuple — so a side-effect-free annotation exists iff the formula is
satisfiable.

The construction requires the instance to be *variable-connected* (see
:meth:`repro.reductions.threesat.ThreeSAT.is_variable_connected`): on a
disconnected formula, assignment tuples can join dummy tuples of other
components, which breaks the equivalence.  The encoder enforces this.

Corollary 3.1 falls out of the same construction: deciding whether a source
tuple belongs to some witness of a view tuple, or whether a source
annotation appears in the view at all, are both NP-hard —
:func:`witness_membership` and :func:`annotation_reaches_view` expose these
two questions on the encoded instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReductionError
from repro.algebra.ast import Join, Project, Query, RelationRef
from repro.algebra.relation import Database, Relation, Row
from repro.provenance.locations import Location, SourceTuple
from repro.provenance.where import where_provenance
from repro.provenance.why import why_provenance
from repro.reductions.threesat import ThreeSAT

__all__ = [
    "PJAnnotationReduction",
    "encode_pj_annotation",
    "witness_membership",
    "annotation_reaches_view",
]

#: Truth-value and dummy constants of the construction.
TRUE = "T"
FALSE = "F"
DUMMY = "d"

#: Name of the view in locations returned by the reduction.
VIEW_NAME = "V"


def _truth(value: bool) -> str:
    return TRUE if value else FALSE


@dataclass(frozen=True)
class PJAnnotationReduction:
    """The encoded instance of Theorem 3.2 plus solution translators."""

    instance: ThreeSAT
    db: Database
    query: Query
    target: Location
    #: The second view tuple ``(c1, ..., c'_m)`` — the one that must *not*
    #: receive the annotation.
    decoy_row: Row

    def assignment_to_source_location(self, assignment: Dict[int, bool]) -> Location:
        """The ``C1`` field of the ``R1`` tuple matching the assignment.

        This is the paper's feasible solution for a satisfiable formula.
        Raises :class:`ReductionError` if the assignment does not satisfy
        clause 1 (its tuple would not exist).
        """
        v1, v2, v3 = self.instance.clause_variables(0)
        row = (
            "c1",
            _truth(assignment.get(v1, False)),
            _truth(assignment.get(v2, False)),
            _truth(assignment.get(v3, False)),
        )
        if row not in self.db["R1"]:
            raise ReductionError(
                f"assignment {assignment!r} does not satisfy clause 1"
            )
        return Location("R1", row, "C1")

    def dummy_source_location(self) -> Location:
        """The ``C1`` field of ``R1``'s dummy tuple (always feasible, always
        a side effect)."""
        return Location("R1", ("c1", DUMMY, DUMMY, DUMMY), "C1")

    def placement_is_assignment_tuple(self, source: Location) -> bool:
        """True if a chosen source location is one of R1's assignment tuples."""
        return (
            source.relation == "R1"
            and source.attribute == "C1"
            and DUMMY not in source.row[1:]
        )


def encode_pj_annotation(instance: ThreeSAT) -> PJAnnotationReduction:
    """Encode a (variable-connected) 3SAT instance per Theorem 3.2."""
    if not instance.clauses:
        raise ReductionError("need at least one clause")
    if not instance.is_variable_connected():
        raise ReductionError(
            "Theorem 3.2's construction requires a variable-connected "
            "formula; see ThreeSAT.is_variable_connected"
        )
    m = len(instance.clauses)
    relations: List[Relation] = []
    for index, clause in enumerate(instance.clauses, start=1):
        variables = sorted(abs(l) for l in clause)
        schema = [f"C{index}"] + [f"x{v}" for v in variables]
        literal_by_var = {abs(l): l for l in clause}
        rows: List[Tuple[str, ...]] = []
        for combo in itertools.product((False, True), repeat=3):
            values = dict(zip(variables, combo))
            satisfied = any(
                values[abs(l)] == (l > 0) for l in clause
            )
            if satisfied:
                rows.append(
                    (f"c{index}",) + tuple(_truth(values[v]) for v in variables)
                )
        if len(rows) != 7:
            raise ReductionError(
                f"clause {clause!r} has {len(rows)} satisfying rows, expected 7"
            )  # pragma: no cover - a 3-literal clause always has exactly 7
        rows.append((f"c{index}", DUMMY, DUMMY, DUMMY))
        if index == m:
            rows.append((f"cp{index}", DUMMY, DUMMY, DUMMY))
        relations.append(Relation(f"R{index}", schema, rows))
        del literal_by_var

    join: Query = RelationRef("R1")
    for index in range(2, m + 1):
        join = Join(join, RelationRef(f"R{index}"))
    query = Project(join, [f"C{i}" for i in range(1, m + 1)])

    target_row = tuple(f"c{i}" for i in range(1, m + 1))
    decoy_row = tuple(f"c{i}" for i in range(1, m)) + (f"cp{m}",)
    return PJAnnotationReduction(
        instance=instance,
        db=Database(relations),
        query=query,
        target=Location(VIEW_NAME, target_row, "C1"),
        decoy_row=decoy_row,
    )


def witness_membership(
    reduction: PJAnnotationReduction, source: SourceTuple
) -> bool:
    """Does ``source`` belong to some witness of the target view tuple?

    Corollary 3.1 shows this question is NP-hard; this reference
    implementation answers it by materializing the full why-provenance,
    which is exponential in the number of clauses — exactly the behaviour
    the corollary predicts cannot be avoided.
    """
    prov = why_provenance(reduction.query, reduction.db)
    return any(
        source in monomial for monomial in prov.witnesses(reduction.target.row)
    )


def annotation_reaches_view(
    reduction: PJAnnotationReduction, source: Location
) -> bool:
    """Does an annotation on ``source`` appear anywhere in the view?

    The second NP-hard question of Corollary 3.1, answered by materializing
    the full propagation relation.
    """
    prov = where_provenance(reduction.query, reduction.db, view_name=VIEW_NAME)
    return bool(prov.forward(source))
