"""The paper's hardness reductions, executable.

Every NP-hardness proof in the paper is a constructive reduction; this
package implements each construction as an encoder producing a concrete
``(database, query, target)`` triple, together with solution translators in
both directions, so the tests can machine-check the *iff* of every theorem:

* :mod:`repro.reductions.pj_view` — Theorem 2.1 (monotone 3SAT → PJ view
  side-effect-free deletion; the paper's Figure 1);
* :mod:`repro.reductions.ju_view` — Theorem 2.2 (monotone 3SAT → JU view
  side-effect-free deletion; Figure 2);
* :mod:`repro.reductions.pj_source` — Theorem 2.5 (hitting set → PJ minimum
  source deletion; Figure 3);
* :mod:`repro.reductions.ju_source` — Theorem 2.7 (hitting set → JU+rename
  minimum source deletion);
* :mod:`repro.reductions.pj_annotation` — Theorem 3.2 and Corollary 3.1
  (3SAT → PJ side-effect-free annotation);
* :mod:`repro.reductions.threesat` / ``hitting_set_instances`` — the source
  problems and their generators.
"""

from repro.reductions.threesat import (
    MonotoneClause,
    MonotoneThreeSAT,
    ThreeSAT,
    figure_instance,
    planted_monotone_3sat,
    random_3sat,
    random_monotone_3sat,
)
from repro.reductions.pj_view import PJViewReduction, encode_pj_view, figure1
from repro.reductions.ju_view import JUViewReduction, encode_ju_view, figure2
from repro.reductions.pj_source import PJSourceReduction, encode_pj_source, figure3
from repro.reductions.ju_source import (
    JUSourceReduction,
    encode_ju_source,
    pad_sets,
)
from repro.reductions.pj_annotation import (
    PJAnnotationReduction,
    annotation_reaches_view,
    encode_pj_annotation,
    witness_membership,
)
from repro.reductions.hitting_set_instances import (
    greedy_gap_instance,
    random_coverable,
    random_hitting_set,
)

__all__ = [
    "MonotoneClause",
    "MonotoneThreeSAT",
    "ThreeSAT",
    "random_monotone_3sat",
    "planted_monotone_3sat",
    "random_3sat",
    "figure_instance",
    "PJViewReduction",
    "encode_pj_view",
    "figure1",
    "JUViewReduction",
    "encode_ju_view",
    "figure2",
    "PJSourceReduction",
    "encode_pj_source",
    "figure3",
    "JUSourceReduction",
    "encode_ju_source",
    "pad_sets",
    "PJAnnotationReduction",
    "encode_pj_annotation",
    "witness_membership",
    "annotation_reaches_view",
    "random_hitting_set",
    "random_coverable",
    "greedy_gap_instance",
]
