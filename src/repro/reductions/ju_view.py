"""Theorem 2.2: monotone 3SAT → side-effect-free deletion for a JU view.

The paper's second hardness construction (its Figure 2): projection is not
needed — join plus union alone make the view side-effect problem NP-hard.

Given a monotone 3SAT instance with m clauses over n variables, build
``2(m + n)`` unary relations:

* per variable ``xi``: ``Ri(A1) = {(T,)}`` and ``R'i(A2) = {(F,)}``;
* per all-positive clause ``Ci``: ``Si(A2) = {(c_i,)}``;
* per all-negative clause ``Cj``: ``S'j(A1) = {(c_j,)}``.

The query is the union of per-clause and per-variable queries:

* positive clause ``Ci = (x_{i1} ∨ x_{i2} ∨ x_{i3})``:
  ``Qi = (R_{i1} ⋈ S_i) ∪ (R_{i2} ⋈ S_i) ∪ (R_{i3} ⋈ S_i)`` — each branch is
  a cross product producing ``(T, c_i)``;
* negative clause ``Cj``: the primed version, producing ``(c_j, F)``;
* per variable ``xj``: ``Q_{m+j} = R_j ⋈ R'_j``, producing ``(T, F)``.

The doomed tuple is ``(T, F)``.  Deleting it forces, per variable, deleting
``T`` from ``Ri`` (read ``xi := false``) or ``F`` from ``R'i`` (read
``xi := true``); side-effect-freeness of the deletion is exactly
satisfiability of the formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.algebra.ast import Join, Query, RelationRef
from repro.algebra.normalize import union_of
from repro.algebra.relation import Database, Relation, Row
from repro.provenance.locations import SourceTuple
from repro.reductions.threesat import MonotoneThreeSAT, figure_instance

__all__ = ["JUViewReduction", "encode_ju_view", "figure2"]

#: The truth-value constants of the construction.
T_CONST = "T"
F_CONST = "F"


@dataclass(frozen=True)
class JUViewReduction:
    """The encoded instance of Theorem 2.2 plus solution translators."""

    instance: MonotoneThreeSAT
    db: Database
    query: Query
    target: Row

    def assignment_to_deletions(
        self, assignment: Dict[int, bool]
    ) -> FrozenSet[SourceTuple]:
        """The deletion set induced by a truth assignment.

        ``xi = true``  → delete ``F`` from ``R'i`` (the primed relation);
        ``xi = false`` → delete ``T`` from ``Ri``.
        """
        deletions: Set[SourceTuple] = set()
        for v in range(1, self.instance.num_variables + 1):
            if assignment.get(v, False):
                deletions.add((f"Rp{v}", (F_CONST,)))
            else:
                deletions.add((f"R{v}", (T_CONST,)))
        return frozenset(deletions)

    def deletions_to_assignment(
        self, deletions: FrozenSet[SourceTuple]
    ) -> Dict[int, bool]:
        """The truth assignment read off a deletion set.

        Per the paper: ``xi`` is true iff ``T`` *remains* in ``Ri``.
        """
        assignment = {v: True for v in range(1, self.instance.num_variables + 1)}
        for relation, _row in deletions:
            if relation.startswith("R") and not relation.startswith("Rp"):
                suffix = relation[1:]
                if suffix.isdigit():
                    assignment[int(suffix)] = False
        return assignment


def encode_ju_view(instance: MonotoneThreeSAT) -> JUViewReduction:
    """Encode a monotone 3SAT instance per Theorem 2.2 / Figure 2.

    Relation naming: ``R<i>``/``Rp<i>`` for the variable relations (``Rp``
    is the paper's ``R'``), ``S<j>``/``Sp<j>`` for the clause relations.
    """
    relations: List[Relation] = []
    for v in range(1, instance.num_variables + 1):
        relations.append(Relation(f"R{v}", ["A1"], [(T_CONST,)]))
        relations.append(Relation(f"Rp{v}", ["A2"], [(F_CONST,)]))

    branches: List[Query] = []
    for index, clause in enumerate(instance.clauses, start=1):
        # The paper introduces *both* S_i(A2) and S'_i(A1) per clause — the
        # full 2(m + n) relations — even though each clause's query uses
        # only the one matching its polarity.
        constant = f"c{index}"
        relations.append(Relation(f"S{index}", ["A2"], [(constant,)]))
        relations.append(Relation(f"Sp{index}", ["A1"], [(constant,)]))
        if clause.positive:
            for v in clause.variables:
                branches.append(Join(RelationRef(f"R{v}"), RelationRef(f"S{index}")))
        else:
            for v in clause.variables:
                branches.append(
                    Join(RelationRef(f"Sp{index}"), RelationRef(f"Rp{v}"))
                )
    for v in range(1, instance.num_variables + 1):
        branches.append(Join(RelationRef(f"R{v}"), RelationRef(f"Rp{v}")))

    return JUViewReduction(
        instance=instance,
        db=Database(relations),
        query=union_of(branches),
        target=(T_CONST, F_CONST),
    )


def figure2() -> JUViewReduction:
    """The exact instance of the paper's Figure 2.

    Same running formula as Figure 1; the view is
    ``{(c1, F), (T, c2), (c3, F), (T, F)}``.
    """
    return encode_ju_view(figure_instance())
