"""3SAT and monotone 3SAT instances for the hardness reductions.

The deletion reductions (Theorems 2.1 and 2.2) start from **monotone 3SAT**
— every clause is all-positive or all-negative (NP-hard by Gold 1974 /
Schaefer 1978) — and the annotation reduction (Theorem 3.2) starts from
general 3SAT.  This module provides:

* :class:`MonotoneClause` / :class:`MonotoneThreeSAT` — structured monotone
  instances with conversion to :class:`repro.solvers.sat.CNF`;
* :class:`ThreeSAT` — general 3-literal-clause instances;
* deterministic pseudo-random generators, including generators biased to
  produce satisfiable or unsatisfiable instances (by planting an assignment
  or by densifying), used by tests and benchmarks;
* the fixed example instance of Figures 1 and 2 of the paper:
  ``(x1 ∨ x2 ∨ x3)(¬x1 ∨ ¬x2 ∨ ¬x3)`` style — see :func:`figure_instance`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReductionError
from repro.solvers.sat import CNF, solve

__all__ = [
    "MonotoneClause",
    "MonotoneThreeSAT",
    "ThreeSAT",
    "random_monotone_3sat",
    "random_3sat",
    "planted_monotone_3sat",
    "figure_instance",
]


@dataclass(frozen=True)
class MonotoneClause:
    """A monotone clause: three variables, all positive or all negated.

    ``positive=True`` encodes ``(x_a ∨ x_b ∨ x_c)``; ``positive=False``
    encodes ``(¬x_a ∨ ¬x_b ∨ ¬x_c)``.  Variables are 1-based indices.
    """

    positive: bool
    variables: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.variables) != len(set(self.variables)):
            raise ReductionError(f"repeated variable in clause {self.variables!r}")
        if any(v < 1 for v in self.variables):
            raise ReductionError("variables are 1-based positive integers")

    def literals(self) -> Tuple[int, ...]:
        """The clause as signed integer literals."""
        sign = 1 if self.positive else -1
        return tuple(sign * v for v in self.variables)

    def satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """True if the assignment satisfies this clause."""
        if self.positive:
            return any(assignment.get(v, False) for v in self.variables)
        return any(not assignment.get(v, False) for v in self.variables)


@dataclass(frozen=True)
class MonotoneThreeSAT:
    """A monotone 3SAT instance: clauses over variables ``1..num_variables``."""

    num_variables: int
    clauses: Tuple[MonotoneClause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if any(v > self.num_variables for v in clause.variables):
                raise ReductionError(
                    f"clause {clause!r} references a variable beyond "
                    f"{self.num_variables}"
                )

    @property
    def positive_clauses(self) -> Tuple[MonotoneClause, ...]:
        """The all-positive clauses, in order."""
        return tuple(c for c in self.clauses if c.positive)

    @property
    def negative_clauses(self) -> Tuple[MonotoneClause, ...]:
        """The all-negative clauses, in order."""
        return tuple(c for c in self.clauses if not c.positive)

    def to_cnf(self) -> CNF:
        """The instance as a CNF formula for the DPLL solver."""
        return CNF([c.literals() for c in self.clauses])

    def solve(self) -> Optional[Dict[int, bool]]:
        """A satisfying assignment over all variables, or None."""
        model = solve(self.to_cnf())
        if model is None:
            return None
        return {v: model.get(v, False) for v in range(1, self.num_variables + 1)}

    def satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """True if the assignment satisfies every clause."""
        return all(c.satisfied_by(assignment) for c in self.clauses)


@dataclass(frozen=True)
class ThreeSAT:
    """A general 3SAT instance: clauses of exactly three distinct variables.

    Each clause is a tuple of three signed literals.  Used by the annotation
    placement reduction (Theorem 3.2), whose relations need one column per
    clause variable.
    """

    num_variables: int
    clauses: Tuple[Tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            variables = [abs(l) for l in clause]
            if len(set(variables)) != 3:
                raise ReductionError(
                    f"clause {clause!r} must use three distinct variables"
                )
            if any(v > self.num_variables or v < 1 for v in variables):
                raise ReductionError(f"clause {clause!r} out of variable range")

    def to_cnf(self) -> CNF:
        """The instance as a CNF formula."""
        return CNF(self.clauses)

    def solve(self) -> Optional[Dict[int, bool]]:
        """A satisfying assignment over all variables, or None."""
        model = solve(self.to_cnf())
        if model is None:
            return None
        return {v: model.get(v, False) for v in range(1, self.num_variables + 1)}

    def clause_variables(self, index: int) -> Tuple[int, int, int]:
        """The (ordered) variables of clause ``index`` (0-based)."""
        a, b, c = self.clauses[index]
        return abs(a), abs(b), abs(c)

    def is_variable_connected(self) -> bool:
        """True if the clause graph (edges = shared variables) is connected.

        The Theorem 3.2 reduction needs this property: on a disconnected
        formula, assignment tuples from one component can join with dummy
        tuples of another, blurring the satisfiable ⟺ side-effect-free
        equivalence.  The generators only emit connected instances.
        """
        if not self.clauses:
            return True
        adjacency: Dict[int, set] = {i: set() for i in range(len(self.clauses))}
        for i in range(len(self.clauses)):
            for j in range(i + 1, len(self.clauses)):
                if set(self.clause_variables(i)) & set(self.clause_variables(j)):
                    adjacency[i].add(j)
                    adjacency[j].add(i)
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(self.clauses)


def random_monotone_3sat(
    num_variables: int,
    num_clauses: int,
    seed: int = 0,
) -> MonotoneThreeSAT:
    """A uniformly random monotone 3SAT instance (deterministic per seed)."""
    if num_variables < 3:
        raise ReductionError("need at least 3 variables for 3-clauses")
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = tuple(sorted(rng.sample(range(1, num_variables + 1), 3)))
        clauses.append(MonotoneClause(rng.random() < 0.5, variables))
    return MonotoneThreeSAT(num_variables, tuple(clauses))


def planted_monotone_3sat(
    num_variables: int,
    num_clauses: int,
    seed: int = 0,
) -> MonotoneThreeSAT:
    """A random monotone 3SAT instance with a planted satisfying assignment.

    Used by benchmarks that need guaranteed-satisfiable instances: each
    clause is re-sampled until the planted assignment satisfies it.
    """
    if num_variables < 3:
        raise ReductionError("need at least 3 variables for 3-clauses")
    rng = random.Random(seed)
    planted = {v: rng.random() < 0.5 for v in range(1, num_variables + 1)}
    clauses = []
    while len(clauses) < num_clauses:
        variables = tuple(sorted(rng.sample(range(1, num_variables + 1), 3)))
        clause = MonotoneClause(rng.random() < 0.5, variables)
        if clause.satisfied_by(planted):
            clauses.append(clause)
    return MonotoneThreeSAT(num_variables, tuple(clauses))


def random_3sat(
    num_variables: int,
    num_clauses: int,
    seed: int = 0,
    require_connected: bool = True,
) -> ThreeSAT:
    """A random general 3SAT instance, optionally variable-connected.

    Connectivity (see :meth:`ThreeSAT.is_variable_connected`) is required by
    the Theorem 3.2 reduction; when requested, clauses are chained so that
    consecutive clauses share a variable.
    """
    if num_variables < 3:
        raise ReductionError("need at least 3 variables for 3-clauses")
    rng = random.Random(seed)
    clauses: List[Tuple[int, int, int]] = []
    previous: Optional[Tuple[int, int, int]] = None
    for _ in range(num_clauses):
        if require_connected and previous is not None:
            shared = rng.choice(previous)
            others = rng.sample(
                [v for v in range(1, num_variables + 1) if v != abs(shared)], 2
            )
            variables = [abs(shared)] + others
        else:
            variables = rng.sample(range(1, num_variables + 1), 3)
        literals = tuple(
            v if rng.random() < 0.5 else -v for v in sorted(variables)
        )
        clauses.append(literals)  # type: ignore[arg-type]
        previous = tuple(abs(l) for l in literals)  # type: ignore[assignment]
    instance = ThreeSAT(num_variables, tuple(clauses))
    if require_connected and not instance.is_variable_connected():
        raise ReductionError("generator failed to produce a connected instance")
    return instance


def unsatisfiable_monotone_3sat() -> MonotoneThreeSAT:
    """A canonical *unsatisfiable* monotone 3SAT instance.

    Over five variables, take every triple as an all-positive clause and
    every triple as an all-negative clause (20 clauses).  The positive
    clauses force at most two false variables (so at least three true); the
    negative clauses force at most two true — contradiction.  Used to
    exercise the "unsatisfiable ⟹ no side-effect-free deletion" direction
    of Theorems 2.1/2.2 deterministically (random monotone instances are
    almost always satisfiable).
    """
    from itertools import combinations

    clauses = []
    for triple in combinations(range(1, 6), 3):
        clauses.append(MonotoneClause(True, triple))
        clauses.append(MonotoneClause(False, triple))
    return MonotoneThreeSAT(5, tuple(clauses))


def figure_instance() -> MonotoneThreeSAT:
    """The example instance of Figures 1 and 2 of the paper.

    The paper's running formula is
    ``(¬x1 ∨ ¬x2 ∨ ¬x3)(x2 ∨ x4 ∨ x5)(¬x4 ∨ ¬x1 ∨ ¬x3)`` over five
    variables: clause 1 and clause 3 are all-negative (they appear in
    ``R2``/the primed relations), clause 2 is all-positive (it appears in
    ``R1``/the unprimed relations) — this is the reading consistent with
    both printed figures.
    """
    return MonotoneThreeSAT(
        num_variables=5,
        clauses=(
            MonotoneClause(False, (1, 2, 3)),
            MonotoneClause(True, (2, 4, 5)),
            MonotoneClause(False, (1, 3, 4)),
        ),
    )
