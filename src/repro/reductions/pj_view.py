"""Theorem 2.1: monotone 3SAT → side-effect-free deletion for a PJ view.

The paper's first hardness construction (its Figure 1).  Given a monotone
3SAT instance over variables ``x1..xn``:

* relation ``R1(A, B)`` holds ``(a, xi)`` for every variable, plus, for each
  all-**positive** clause ``Ci``, tuples ``(a_i, x)`` for each ``x ∈ Ci``
  with a fresh constant ``a_i``;
* relation ``R2(B, C)`` holds ``(xi, c)`` for every variable, plus, for each
  all-**negative** clause ``Cj``, tuples ``(x, c_j)`` for each ``x ∈ Cj``
  with a fresh constant ``c_j``;
* the query is ``Π_{A,C}(R1 ⋈ R2)`` and the doomed view tuple is ``(a, c)``.

The view contains ``(a, c)``, one ``(a_i, c)`` per positive clause and one
``(a, c_j)`` per negative clause.  Deleting ``(a, c)`` forces, per variable,
the removal of ``(a, xi)`` (read: ``xi := true``) or ``(xi, c)``
(read: ``xi := false``); the deletion is side-effect-free iff the induced
assignment satisfies every clause — i.e. iff the formula is satisfiable.

This module provides the encoder, both solution translators (assignment →
deletion set and back), and the exact Figure 1 instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import ReductionError
from repro.algebra.ast import Query
from repro.algebra.parser import parse_query
from repro.algebra.relation import Database, Relation, Row
from repro.provenance.locations import SourceTuple
from repro.reductions.threesat import MonotoneThreeSAT, figure_instance

__all__ = ["PJViewReduction", "encode_pj_view", "figure1"]

#: The shared constants of the construction.
A_CONST = "a"
C_CONST = "c"


def _var(name_index: int) -> str:
    return f"x{name_index}"


@dataclass(frozen=True)
class PJViewReduction:
    """The encoded instance of Theorem 2.1 plus solution translators."""

    instance: MonotoneThreeSAT
    db: Database
    query: Query
    target: Row

    def assignment_to_deletions(
        self, assignment: Dict[int, bool]
    ) -> FrozenSet[SourceTuple]:
        """The deletion set induced by a truth assignment.

        ``xi = true``  → delete ``(a, xi)`` from R1;
        ``xi = false`` → delete ``(xi, c)`` from R2.
        """
        deletions: Set[SourceTuple] = set()
        for v in range(1, self.instance.num_variables + 1):
            if assignment.get(v, False):
                deletions.add(("R1", (A_CONST, _var(v))))
            else:
                deletions.add(("R2", (_var(v), C_CONST)))
        return frozenset(deletions)

    def deletions_to_assignment(
        self, deletions: FrozenSet[SourceTuple]
    ) -> Dict[int, bool]:
        """The truth assignment read off a deletion set.

        A variable is true iff its ``(a, xi)`` tuple was deleted.  Deleting
        both of a variable's tuples is legal for the deletion problem but
        read as "true"; deleting clause-constant tuples is ignored.
        """
        assignment = {v: False for v in range(1, self.instance.num_variables + 1)}
        known = {("R1", (A_CONST, _var(v))): v for v in assignment}
        for deletion in deletions:
            if deletion in known:
                assignment[known[deletion]] = True
        return assignment


def encode_pj_view(instance: MonotoneThreeSAT) -> PJViewReduction:
    """Encode a monotone 3SAT instance per Theorem 2.1 / Figure 1."""
    r1_rows: List[Tuple[str, str]] = []
    r2_rows: List[Tuple[str, str]] = []
    for v in range(1, instance.num_variables + 1):
        r1_rows.append((A_CONST, _var(v)))
        r2_rows.append((_var(v), C_CONST))
    positive_index = 0
    negative_index = 0
    for index, clause in enumerate(instance.clauses, start=1):
        if clause.positive:
            positive_index += 1
            fresh = f"a{index}"
            for v in clause.variables:
                r1_rows.append((fresh, _var(v)))
        else:
            negative_index += 1
            fresh = f"c{index}"
            for v in clause.variables:
                r2_rows.append((_var(v), fresh))
    if positive_index + negative_index != len(instance.clauses):
        raise ReductionError("clause bookkeeping failed")  # pragma: no cover

    db = Database(
        [
            Relation("R1", ["A", "B"], r1_rows),
            Relation("R2", ["B", "C"], r2_rows),
        ]
    )
    query = parse_query("PROJECT[A, C](R1 JOIN R2)")
    return PJViewReduction(
        instance=instance, db=db, query=query, target=(A_CONST, C_CONST)
    )


def figure1() -> PJViewReduction:
    """The exact instance of the paper's Figure 1.

    Encodes the running formula over five variables with clauses
    ``(¬x1 ∨ ¬x2 ∨ ¬x3)``, ``(x2 ∨ x4 ∨ x5)``, ``(¬x1 ∨ ¬x3 ∨ ¬x4)``;
    the resulting relations match the printed figure: ``R1`` has the five
    ``(a, xi)`` rows plus ``(a2, x2), (a2, x4), (a2, x5)``, and ``R2`` has
    the five ``(xi, c)`` rows plus the ``c1`` and ``c3`` rows.  The view is
    ``{(a,c), (a,c1), (a,c3), (a2,c), (a2,c1), (a2,c3)}``.
    """
    return encode_pj_view(figure_instance())
