"""Theorem 2.7: hitting set → minimum source deletion for a JU view.

The paper's second set-cover-hardness construction; it replaces projection
with union **and renaming** (the paper notes it is open whether renaming can
be avoided).

Given a hitting set instance with equal-size sets (pad smaller sets with
fresh elements), build:

* one unary relation ``Ri(A) = {(a,)}`` per element ``xi``;
* per set ``Si = {x_{i1}, ..., x_{ik}}``, the query
  ``Qi = δ_{A→A1}(R_{i1}) ⋈ ... ⋈ δ_{A→Ak}(R_{ik})`` — a k-way cross product
  of renamed singletons, producing the single tuple ``(a, ..., a)``;
* the query is ``Q1 ∪ ... ∪ Qm``; the doomed view tuple is ``(a, ..., a)``.

Every witness is exactly one set's worth of relations, so ``T`` deletes the
tuple iff ``{ i : (a,) deleted from Ri }`` is a hitting set, and minimum
source deletions = minimum hitting set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import ReductionError
from repro.algebra.ast import Join, Query, RelationRef, Rename
from repro.algebra.normalize import union_of
from repro.algebra.relation import Database, Relation, Row
from repro.provenance.locations import SourceTuple

__all__ = ["JUSourceReduction", "encode_ju_source", "pad_sets"]

#: The single constant of the construction.
A_CONST = "a"


@dataclass(frozen=True)
class JUSourceReduction:
    """The encoded instance of Theorem 2.7 plus solution translators."""

    sets: Tuple[FrozenSet[int], ...]
    num_elements: int
    db: Database
    query: Query
    target: Row

    def hitting_set_to_deletions(
        self, hitting_set: FrozenSet[int]
    ) -> FrozenSet[SourceTuple]:
        """Delete ``(a,)`` from ``Ri`` for each chosen element."""
        return frozenset((f"R{i}", (A_CONST,)) for i in hitting_set)

    def deletions_to_hitting_set(
        self, deletions: FrozenSet[SourceTuple]
    ) -> FrozenSet[int]:
        """The elements whose relation lost its tuple."""
        chosen = set()
        for relation, _row in deletions:
            if relation.startswith("R"):
                chosen.add(int(relation[1:]))
        return frozenset(chosen)


def pad_sets(
    sets: Sequence[FrozenSet[int]], num_elements: int
) -> Tuple[Tuple[FrozenSet[int], ...], int]:
    """Pad sets with fresh distinct elements so all have equal size.

    Returns the padded sets and the new universe size.  Padding preserves
    minimum hitting sets: fresh elements occur in a single set each, and a
    minimum solution never needs them (the paper's WLOG step).
    """
    if not sets:
        raise ReductionError("need at least one set")
    k = max(len(s) for s in sets)
    next_fresh = num_elements + 1
    padded: List[FrozenSet[int]] = []
    for members in sets:
        if not members:
            raise ReductionError("empty sets cannot be hit")
        extra = []
        while len(members) + len(extra) < k:
            extra.append(next_fresh)
            next_fresh += 1
        padded.append(frozenset(members) | frozenset(extra))
    return tuple(padded), next_fresh - 1


def encode_ju_source(
    sets: Sequence[FrozenSet[int]], num_elements: int
) -> JUSourceReduction:
    """Encode a hitting set instance per Theorem 2.7.

    Sets are padded to equal size first (the paper's WLOG assumption); the
    padded universe determines the relations built.
    """
    padded, universe = pad_sets(sets, num_elements)
    k = len(next(iter(padded)))

    relations = [
        Relation(f"R{i}", ["A"], [(A_CONST,)]) for i in range(1, universe + 1)
    ]

    branches: List[Query] = []
    for members in padded:
        ordered = sorted(members)
        branch: Query = Rename(RelationRef(f"R{ordered[0]}"), {"A": "A1"})
        for position, element in enumerate(ordered[1:], start=2):
            leaf = Rename(RelationRef(f"R{element}"), {"A": f"A{position}"})
            branch = Join(branch, leaf)
        branches.append(branch)

    return JUSourceReduction(
        sets=padded,
        num_elements=universe,
        db=Database(relations),
        query=union_of(branches),
        target=tuple([A_CONST] * k),
    )
