"""Hitting set instance generators for the set-cover-hardness benchmarks.

Theorems 2.5 and 2.7 transfer the set-cover approximation threshold to the
source side-effect problem; the benchmarks need instance families that
exercise both the equivalence (minimum deletions = minimum hitting set) and
the greedy/optimal gap.  Provided here:

* :func:`random_hitting_set` — uniform random sets;
* :func:`random_coverable` — random sets with a planted small hitting set;
* :func:`greedy_gap_instance` — the classical family on which greedy set
  cover pays a Θ(log n) factor over the optimum, adapted to hitting set
  form via duality.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Tuple

from repro.errors import ReductionError

__all__ = ["random_hitting_set", "random_coverable", "greedy_gap_instance"]

#: An instance: (sets, number of elements).  Elements are 1-based.
Instance = Tuple[Tuple[FrozenSet[int], ...], int]


def random_hitting_set(
    num_elements: int,
    num_sets: int,
    set_size: int,
    seed: int = 0,
) -> Instance:
    """Uniform random sets of a fixed size over ``1..num_elements``."""
    if set_size > num_elements:
        raise ReductionError("set size exceeds universe size")
    rng = random.Random(seed)
    sets = tuple(
        frozenset(rng.sample(range(1, num_elements + 1), set_size))
        for _ in range(num_sets)
    )
    return sets, num_elements


def random_coverable(
    num_elements: int,
    num_sets: int,
    set_size: int,
    planted_size: int,
    seed: int = 0,
) -> Instance:
    """Random sets, each guaranteed to contain a planted element.

    The planted elements form a hitting set of size ``planted_size``, so the
    optimum is at most that — useful for benchmarking the greedy ratio on
    instances with known-good optima.
    """
    if planted_size < 1 or planted_size > num_elements:
        raise ReductionError("invalid planted size")
    rng = random.Random(seed)
    planted = rng.sample(range(1, num_elements + 1), planted_size)
    sets: List[FrozenSet[int]] = []
    for _ in range(num_sets):
        anchor = rng.choice(planted)
        rest = rng.sample(
            [e for e in range(1, num_elements + 1) if e != anchor],
            max(0, set_size - 1),
        )
        sets.append(frozenset([anchor] + rest))
    return tuple(sets), num_elements


def greedy_gap_instance(levels: int) -> Instance:
    """A hitting set family where greedy pays ``levels`` while OPT = 2.

    The dual of the classical set-cover gap family.  The sets to hit are
    "columns" of size 2 arranged in blocks; the universe holds two *row*
    elements (together they hit everything — the optimum) and one *block*
    element per block:

    * block ``k`` (``k = 1..levels``) contains ``2^k`` columns; column ``j``
      of block ``k`` is the set ``{row(j), block_element_k}`` where
      ``row(j)`` alternates between row elements 1 and 2.

    At the step where blocks ``1..k`` are still unhit, the block-``k``
    element hits ``2^k`` sets while each row element hits
    ``Σ_{i≤k} 2^i / 2 = 2^k − 1`` — strictly fewer — so greedy takes one
    block element per level, ``levels`` picks total, against the optimum
    ``{1, 2}``: a Θ(log N) gap in the number of sets ``N``.
    """
    if levels < 1:
        raise ReductionError("need at least one level")
    sets: List[FrozenSet[int]] = []
    element = 3
    for k in range(1, levels + 1):
        block_element = element
        element += 1
        width = 2 ** k
        for j in range(width):
            row = 1 if j % 2 == 0 else 2
            sets.append(frozenset({row, block_element}))
    return tuple(sets), element - 1
