"""Theorem 2.5: hitting set → minimum source deletion for a PJ view.

The paper's set-cover-hardness construction (its Figure 3).  Given a hitting
set instance — sets ``S1..Sm`` over elements ``x1..xn`` — build:

* ``R0(S, A1, ..., An)``: one tuple per set ``Si``, its characteristic
  vector — attribute ``Aj`` holds ``xj`` if ``xj ∈ Si``, else the dummy
  ``d``;
* ``Ri(Ai, Bi, C)`` for each element ``xi``: ``n + 1`` tuples
  ``(xi, α0, c), (d, α1, c), ..., (d, αn, c)``.

The query is ``Π_C(R0 ⋈ R1 ⋈ ... ⋈ Rn)``; the view is the single tuple
``(c,)`` and we want to delete it with the fewest source deletions.  A set
``Si`` generates ``n^(n - |Si|)`` witnesses; it can be "hit" by deleting one
``(x_p, α0, c)`` with ``x_p ∈ Si`` (cost 1) or all ``n`` dummies of some
``Rq`` with ``x_q ∉ Si`` (cost n) — so minimum deletions = minimum hitting
set, and the O(log n) set-cover approximation threshold transfers.

Warning: the join deliberately blows up — evaluating the encoded query
materializes ``Σ_i n^(n-|Si|)`` intermediate tuples.  That blow-up *is* the
hardness; keep ``n`` small when calling the evaluator or provenance engines
on encoded instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.errors import ReductionError
from repro.algebra.ast import Join, Project, Query, RelationRef
from repro.algebra.relation import Database, Relation, Row
from repro.provenance.locations import SourceTuple

__all__ = ["PJSourceReduction", "encode_pj_source", "figure3"]

#: Constants of the construction.
C_CONST = "c"
DUMMY = "d"


def _var(index: int) -> str:
    return f"x{index}"


@dataclass(frozen=True)
class PJSourceReduction:
    """The encoded instance of Theorem 2.5 plus solution translators."""

    sets: Tuple[FrozenSet[int], ...]
    num_elements: int
    db: Database
    query: Query
    target: Row

    def hitting_set_to_deletions(
        self, hitting_set: FrozenSet[int]
    ) -> FrozenSet[SourceTuple]:
        """Delete ``(x_p, α0, c)`` from ``Rp`` for each chosen element."""
        return frozenset(
            (f"R{p}", (_var(p), "alpha0", C_CONST)) for p in hitting_set
        )

    def deletions_to_hitting_set(
        self, deletions: FrozenSet[SourceTuple]
    ) -> FrozenSet[int]:
        """Read a hitting set off a deletion set (paper's normalization).

        Canonical deletions ``(x_p, α0, c)`` map to ``p`` directly.  The
        paper's proof shows any other deletion can be replaced without cost:
        a deleted ``R0`` set-tuple is replaced by one of its elements, and a
        full dummy column of ``Rq`` by an arbitrary element per remaining
        set.  This decoder implements that normalization, so the returned
        hitting set is never larger than the deletion set.
        """
        chosen: Set[int] = set()
        needs_cover: List[int] = []
        for relation, row in deletions:
            if relation == "R0":
                # A deleted set tuple: that set is trivially "hit"; replace
                # by any of its elements.
                set_index = int(str(row[0])[1:])  # row[0] is "s<i>"
                needs_cover.append(set_index - 1)
            elif relation.startswith("R"):
                index = int(relation[1:])
                if row[1] == "alpha0":
                    chosen.add(index)
                # Dummy deletions contribute only if the whole column went;
                # the normalization below re-covers affected sets anyway.
        for set_index in needs_cover:
            members = self.sets[set_index]
            if not members & chosen:
                chosen.add(min(members))
        # Finally ensure every set is hit (dummy-column deletions case).
        for index, members in enumerate(self.sets):
            if not members & chosen:
                if self._dummy_column_deleted(deletions, members):
                    chosen.add(min(members))
        return frozenset(chosen)

    def _dummy_column_deleted(
        self, deletions: FrozenSet[SourceTuple], members: FrozenSet[int]
    ) -> bool:
        """True if some relation Rq (x_q ∉ members) lost all its dummies."""
        for q in range(1, self.num_elements + 1):
            if q in members:
                continue
            dummies = {
                (f"R{q}", (DUMMY, f"alpha{j}", C_CONST))
                for j in range(1, self.num_elements + 1)
            }
            if dummies <= deletions:
                return True
        return False


def encode_pj_source(
    sets: Sequence[FrozenSet[int]], num_elements: int
) -> PJSourceReduction:
    """Encode a hitting set instance per Theorem 2.5 / Figure 3.

    ``sets`` are frozensets of 1-based element indices in ``1..num_elements``.
    """
    if not sets:
        raise ReductionError("need at least one set")
    for members in sets:
        if not members:
            raise ReductionError("empty sets cannot be hit")
        if any(x < 1 or x > num_elements for x in members):
            raise ReductionError(f"set {sorted(members)!r} out of element range")

    n = num_elements
    r0_schema = ["S"] + [f"A{j}" for j in range(1, n + 1)]
    r0_rows = []
    for index, members in enumerate(sets, start=1):
        row = [f"s{index}"]
        for j in range(1, n + 1):
            row.append(_var(j) if j in members else DUMMY)
        r0_rows.append(tuple(row))

    relations: List[Relation] = [Relation("R0", r0_schema, r0_rows)]
    for i in range(1, n + 1):
        rows: List[Tuple[str, str, str]] = [(_var(i), "alpha0", C_CONST)]
        for j in range(1, n + 1):
            rows.append((DUMMY, f"alpha{j}", C_CONST))
        relations.append(Relation(f"R{i}", [f"A{i}", f"B{i}", "C"], rows))

    join: Query = RelationRef("R0")
    for i in range(1, n + 1):
        join = Join(join, RelationRef(f"R{i}"))
    query = Project(join, ["C"])

    return PJSourceReduction(
        sets=tuple(frozenset(s) for s in sets),
        num_elements=n,
        db=Database(relations),
        query=query,
        target=(C_CONST,),
    )


def figure3() -> PJSourceReduction:
    """A small instance shaped like the paper's Figure 3.

    The figure is schematic (it shows the general template ``R0`` with
    characteristic vectors and the ``Ri`` with ``α`` rows); this helper
    instantiates it with the concrete instance
    ``S1 = {x1, x3}``, ``S2 = {x2, x3}`` over three elements, small enough
    to print and evaluate exactly.
    """
    return encode_pj_source(
        [frozenset({1, 3}), frozenset({2, 3})], num_elements=3
    )
