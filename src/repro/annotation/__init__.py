"""Annotation placement through views (Section 3 of the paper).

Builds on the where-provenance engine
(:mod:`repro.provenance.where`) to answer: *which source field should be
annotated so the annotation lands on a requested view field with minimal
spread?*
"""

from repro.annotation.store import AnnotatedView, Annotation, AnnotationStore
from repro.annotation.placement import (
    AnnotationPlacement,
    exhaustive_placement,
    place_annotation,
    side_effect_free_annotation_exists,
    sju_placement,
    spu_placement,
    verify_placement,
)

__all__ = [
    "Annotation",
    "AnnotationStore",
    "AnnotatedView",
    "AnnotationPlacement",
    "place_annotation",
    "spu_placement",
    "sju_placement",
    "exhaustive_placement",
    "side_effect_free_annotation_exists",
    "verify_placement",
]
