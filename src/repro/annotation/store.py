"""An annotation store: the paper's introduction scenario, implemented.

The paper motivates annotation placement with shared scientific databases
(BioDAS, Annotea): annotators usually *cannot* modify the source database,
so annotations live in a **separate store** keyed by location, and "we may
allow annotations on annotations".

:class:`AnnotationStore` provides exactly that:

* attach free-form annotation values to source locations
  (:meth:`AnnotationStore.add`), including replies to existing annotations
  (:meth:`AnnotationStore.reply` — annotations on annotations);
* compute the annotated view of any monotone query
  (:meth:`AnnotationStore.annotated_view`): each view location receives the
  annotations of every source location that propagates to it, per the
  paper's five forward rules;
* place a new annotation *via the view* (:meth:`AnnotationStore.annotate_view`):
  the store runs the Section 3 placement algorithm, records the annotation
  at the chosen **source** location, and reports the side effects — this is
  the end-to-end loop the paper's annotation placement problem optimizes.

The store is deliberately independent of the database objects (immutable
value-identified rows make that sound): deleting a source tuple simply
orphans its annotations, which :meth:`AnnotationStore.orphans` reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import InfeasibleError, ReproError
from repro.algebra.ast import Query
from repro.algebra.relation import Database
from repro.annotation.placement import AnnotationPlacement, place_annotation
from repro.provenance.locations import Location, validate_location
from repro.provenance.where import where_provenance

__all__ = ["Annotation", "AnnotationStore", "AnnotatedView"]


@dataclass(frozen=True)
class Annotation:
    """One annotation: an id, the annotated location, text, and optionally
    the id of the annotation it replies to (annotations on annotations)."""

    annotation_id: int
    location: Location
    text: str
    parent: Optional[int] = None


@dataclass(frozen=True)
class AnnotatedView:
    """A view plus the annotations each of its locations carries."""

    view_name: str
    annotations: Dict[Location, Tuple[Annotation, ...]]

    def at(self, location: Location) -> Tuple[Annotation, ...]:
        """Annotations visible at a view location (empty tuple if none)."""
        return self.annotations.get(location, ())

    def annotated_locations(self) -> Tuple[Location, ...]:
        """View locations that carry at least one annotation, sorted."""
        return tuple(
            sorted(
                (loc for loc, anns in self.annotations.items() if anns),
                key=lambda l: (repr(l.row), l.attribute),
            )
        )


class AnnotationStore:
    """A mutable store of annotations over source locations.

    The store never touches the source database — matching the paper's
    observation that annotators "may not have update privileges to the
    database so that annotations have to be stored in a separate database".
    """

    def __init__(self) -> None:
        self._annotations: Dict[int, Annotation] = {}
        self._by_location: Dict[Location, List[int]] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Authoring
    # ------------------------------------------------------------------
    def add(self, db: Database, location: Location, text: str) -> Annotation:
        """Attach ``text`` to a source location (validated against ``db``)."""
        validate_location(db, location)
        annotation = Annotation(next(self._ids), location, text)
        self._annotations[annotation.annotation_id] = annotation
        self._by_location.setdefault(location, []).append(annotation.annotation_id)
        return annotation

    def reply(self, parent_id: int, text: str) -> Annotation:
        """An annotation **on an annotation**: attaches to the same location
        and records the parent id."""
        try:
            parent = self._annotations[parent_id]
        except KeyError:
            raise ReproError(f"no annotation with id {parent_id}") from None
        annotation = Annotation(next(self._ids), parent.location, text, parent_id)
        self._annotations[annotation.annotation_id] = annotation
        self._by_location.setdefault(parent.location, []).append(
            annotation.annotation_id
        )
        return annotation

    def remove(self, annotation_id: int) -> None:
        """Delete an annotation (and leave replies dangling-but-listed)."""
        annotation = self._annotations.pop(annotation_id, None)
        if annotation is None:
            raise ReproError(f"no annotation with id {annotation_id}")
        self._by_location[annotation.location].remove(annotation_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._annotations)

    def get(self, annotation_id: int) -> Annotation:
        """Fetch an annotation by id."""
        try:
            return self._annotations[annotation_id]
        except KeyError:
            raise ReproError(f"no annotation with id {annotation_id}") from None

    def at(self, location: Location) -> Tuple[Annotation, ...]:
        """All annotations attached to a source location."""
        ids = self._by_location.get(location, ())
        return tuple(self._annotations[i] for i in ids)

    def thread(self, annotation_id: int) -> Tuple[Annotation, ...]:
        """An annotation with its chain of ancestors, root first."""
        chain: List[Annotation] = []
        current: Optional[int] = annotation_id
        while current is not None:
            annotation = self.get(current)
            chain.append(annotation)
            current = annotation.parent
        return tuple(reversed(chain))

    def locations(self) -> Tuple[Location, ...]:
        """Source locations carrying at least one annotation."""
        return tuple(
            sorted(
                (loc for loc, ids in self._by_location.items() if ids),
                key=lambda l: (l.relation, repr(l.row), l.attribute),
            )
        )

    def orphans(self, db: Database) -> Tuple[Annotation, ...]:
        """Annotations whose location no longer exists in ``db``.

        Source deletions can strand annotations; curation tooling needs to
        find them.
        """
        out: List[Annotation] = []
        for annotation in self._annotations.values():
            try:
                validate_location(db, annotation.location)
            except Exception:
                out.append(annotation)
        return tuple(sorted(out, key=lambda a: a.annotation_id))

    # ------------------------------------------------------------------
    # Propagation through queries
    # ------------------------------------------------------------------
    def annotated_view(
        self, query: Query, db: Database, view_name: str = "V"
    ) -> AnnotatedView:
        """Evaluate ``query`` and carry every stored annotation forward.

        Each view location receives the annotations of all source locations
        in its backward where-provenance — the paper's forward rules run on
        the entire store at once.
        """
        prov = where_provenance(query, db, view_name=view_name)
        out: Dict[Location, Tuple[Annotation, ...]] = {}
        for (row, attr), sources in prov.as_dict().items():
            collected: List[Annotation] = []
            for source in sorted(sources, key=repr):
                collected.extend(self.at(source))
            out[Location(view_name, row, attr)] = tuple(collected)
        return AnnotatedView(view_name, out)

    def annotate_view(
        self,
        query: Query,
        db: Database,
        target: Location,
        text: str,
        allow_exponential: bool = True,
    ) -> Tuple[Annotation, AnnotationPlacement]:
        """Annotate a *view* location: solve placement, store at the source.

        Runs the Section 3 placement problem to pick the side-effect-minimal
        source location, records the annotation there, and returns both the
        stored annotation and the placement (whose ``propagated`` field
        lists every view location that will now show the note).
        """
        placement = place_annotation(
            query, db, target, allow_exponential=allow_exponential
        )
        annotation = self.add(db, placement.source, text)
        return annotation, placement
