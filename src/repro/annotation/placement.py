"""The annotation placement problem (Section 3.1).

Given a source database ``S``, a query ``Q``, the view ``Q(S)`` and a view
location, find **one** source location whose annotation propagates (under
the forward rules of :mod:`repro.provenance.where`) to the given view
location while annotating as few other view locations as possible.

Unlike deletion, the optimal solution is always a *single* source location
— annotating several can only widen the spread — so the problem is a
minimization over the candidate source locations in the view location's
backward image.

The paper's dichotomy (its third table):

===================  ==============================================
Query class          Deciding whether a side-effect-free annotation
                     exists
===================  ==============================================
involves P and J     NP-hard (Theorem 3.2)
SJU                  P (Theorem 3.4)
SPU                  P (Theorem 3.3)
===================  ==============================================

Note the contrast with deletion: JU queries are *easy* here — without
projection an annotation cannot "hide" — while PJ queries remain hard.  The
hardness for PJ is query complexity: materializing ``R1 ⋈ ... ⋈ Rm`` under a
projection can be exponential in the query size, which is exactly the lever
Theorem 3.2's reduction pulls.

Implementations:

* :func:`spu_placement` — Theorem 3.3: scan each SP branch for a source
  tuple that selects-and-projects onto the target row; its matching field is
  side-effect-free (rename-free SPU; actual side effects always verified).
* :func:`sju_placement` — Theorem 3.4: for each branch containing the
  target and each join component carrying the attribute, count the view
  locations annotated through *every* branch, and keep the minimum.
  Polynomial given the branch views.
* :func:`exhaustive_placement` — optimal for any SPJRU query via the full
  where-provenance relation; worst-case exponential in query size.
* :func:`place_annotation` — the dispatcher realizing the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.errors import InfeasibleError, QueryClassError, ReproError
from repro.algebra.ast import Query, RelationRef, Rename
from repro.algebra.classify import (
    branch_parts,
    flatten_union,
    is_sju,
    is_spu,
)
from repro.algebra.evaluate import evaluate
from repro.algebra.relation import Database, Row
from repro.algebra.schema import Schema
from repro.provenance.cache import cached_where_provenance
from repro.provenance.locations import Location
from repro.provenance.where import WhereProvenance

__all__ = [
    "AnnotationPlacement",
    "spu_placement",
    "sju_placement",
    "exhaustive_placement",
    "place_annotation",
    "side_effect_free_annotation_exists",
    "verify_placement",
]


@dataclass(frozen=True)
class AnnotationPlacement:
    """A solution to the annotation placement problem.

    Attributes:
        target: the requested view location.
        source: the source location to annotate.
        propagated: every view location the annotation reaches (includes
            the target).
        algorithm: name of the algorithm that produced the placement.
        optimal: True when the algorithm guarantees minimality of
            ``len(propagated)``.
    """

    target: Location
    source: Location
    propagated: FrozenSet[Location]
    algorithm: str
    optimal: bool

    @property
    def num_side_effects(self) -> int:
        """View locations annotated besides the target."""
        return len(self.propagated) - 1

    @property
    def side_effect_free(self) -> bool:
        """True when only the target receives the annotation."""
        return self.num_side_effects == 0

    def describe(self) -> str:
        """A short human-readable summary."""
        return (
            f"annotate {self.source} via {self.algorithm}; "
            f"side effects: {self.num_side_effects}"
        )


def _leaf_attribute_maps(
    leaf: Query, catalog: Mapping[str, Schema]
) -> Tuple[str, Dict[str, str], Dict[str, str]]:
    """For a normal-form leaf, its base name and attribute maps.

    Returns ``(base_name, base_to_leaf, leaf_to_base)`` where the maps
    compose every renaming between the base relation and the leaf's output.
    """
    renames: List[Dict[str, str]] = []
    node = leaf
    while isinstance(node, Rename):
        renames.append(node.mapping_dict)
        node = node.child
    if not isinstance(node, RelationRef):
        raise QueryClassError(f"{leaf!r} is not a normal-form leaf")
    base_to_leaf: Dict[str, str] = {}
    for attr in catalog[node.name].attributes:
        current = attr
        for mapping in reversed(renames):  # innermost rename applies first
            current = mapping.get(current, current)
        base_to_leaf[attr] = current
    leaf_to_base = {leaf_attr: base for base, leaf_attr in base_to_leaf.items()}
    return node.name, base_to_leaf, leaf_to_base


def spu_placement(
    query: Query,
    db: Database,
    target: Location,
    prov: Optional[WhereProvenance] = None,
) -> AnnotationPlacement:
    """Theorem 3.3: side-effect-free placement for SPU queries.

    Scans each SP branch for a source tuple whose selection and projection
    reach the target row, and annotates the matching source field.  For
    rename-free SPU queries the result is always side-effect-free; side
    effects are computed from the true propagation relation regardless, so
    the plan is honest even on renamed variants.
    """
    if not is_spu(query):
        raise QueryClassError(
            f"spu_placement requires an SPU query, got class {query.operators()!r}"
        )
    return _best_placement(query, db, target, "spu-branch-scan", prov)


def exhaustive_placement(
    query: Query,
    db: Database,
    target: Location,
    prov: Optional[WhereProvenance] = None,
) -> AnnotationPlacement:
    """Optimal placement for any SPJRU query via full where-provenance.

    Candidates are exactly the backward image of the target; the winner
    minimizes the forward image size.  Worst-case exponential in query size
    (Theorem 3.2 says this cannot be avoided for PJ queries) but exact.
    """
    return _best_placement(query, db, target, "exhaustive-where-provenance", prov)


def _best_placement(
    query: Query,
    db: Database,
    target: Location,
    algorithm: str,
    prov: Optional[WhereProvenance] = None,
) -> AnnotationPlacement:
    if prov is None:
        prov = cached_where_provenance(query, db, view_name=target.relation)
    candidates = prov.backward(target.row, target.attribute)
    if not candidates:
        raise InfeasibleError(
            f"no source location propagates to {target} "
            "(a constant view column carries no annotations)"
        )
    forward = prov.forward_closure()
    best_source = None
    best_image: Optional[FrozenSet[Location]] = None
    for candidate in sorted(candidates, key=repr):
        image = forward[candidate]
        if best_image is None or len(image) < len(best_image):
            best_source, best_image = candidate, image
            if len(image) == 1:
                break
    assert best_source is not None and best_image is not None
    return AnnotationPlacement(
        target=target,
        source=best_source,
        propagated=best_image,
        algorithm=algorithm,
        optimal=True,
    )


def sju_placement(query: Query, db: Database, target: Location) -> AnnotationPlacement:
    """Theorem 3.4: polynomial placement for SJU queries in normal form.

    For each SJ branch producing the target row and each join component
    whose (renamed) schema carries the target attribute, the candidate is
    the corresponding field of that component; its cost is the number of
    view locations annotated through **all** branches in which the same base
    relation occurs.  No projection means no blowup: everything is computed
    on the branch views.
    """
    if not is_sju(query):
        raise QueryClassError(
            f"sju_placement requires an SJU query, got class {query.operators()!r}"
        )
    catalog = {name: db[name].schema for name in db}
    branches = flatten_union(query)
    parsed = []
    for branch in branches:
        project, select, leaves = branch_parts(branch)
        if project is not None:
            raise QueryClassError("sju_placement requires a projection-free query")
        parsed.append((branch, leaves))

    view_schema = query.output_schema(catalog)
    view_order = view_schema.attributes
    branch_views: List[Set[Row]] = []
    branch_schemas: List[Schema] = []
    for branch, _ in parsed:
        relation = evaluate(branch, db)
        branch_schemas.append(relation.schema)
        reorder = relation.schema.positions(view_order)
        branch_views.append({tuple(r[i] for i in reorder) for r in relation.rows})

    target_row = tuple(target.row)
    attribute = target.attribute

    # Candidate source locations, per the theorem: components of the target
    # row in branches that produce it, restricted to leaves carrying the
    # attribute.
    candidates: Set[Location] = set()
    for (branch, leaves), rows in zip(parsed, branch_views):
        if target_row not in rows:
            continue
        for leaf in leaves:
            base, base_to_leaf, leaf_to_base = _leaf_attribute_maps(leaf, catalog)
            if attribute not in leaf_to_base:
                continue
            leaf_schema = leaf.output_schema(catalog)
            component = tuple(
                target_row[view_schema.index_of(a)] for a in leaf_schema.attributes
            )
            candidates.add(Location(base, component, leaf_to_base[attribute]))
    if not candidates:
        raise InfeasibleError(f"no source location propagates to {target}")

    view_name = target.relation

    def forward_image(source: Location) -> FrozenSet[Location]:
        """View locations annotated by ``source``, across every branch."""
        annotated: Set[Location] = set()
        for (branch, leaves), rows, schema in zip(
            parsed, branch_views, branch_schemas
        ):
            for leaf in leaves:
                base, base_to_leaf, _ = _leaf_attribute_maps(leaf, catalog)
                if base != source.relation:
                    continue
                leaf_attr = base_to_leaf[source.attribute]
                leaf_schema = leaf.output_schema(catalog)
                for row in rows:
                    component = tuple(
                        row[view_schema.index_of(a)]
                        for a in leaf_schema.attributes
                    )
                    if component == tuple(source.row):
                        annotated.add(Location(view_name, row, leaf_attr))
        return frozenset(annotated)

    best_source = None
    best_image: Optional[FrozenSet[Location]] = None
    for candidate in sorted(candidates, key=repr):
        image = forward_image(candidate)
        if best_image is None or len(image) < len(best_image):
            best_source, best_image = candidate, image
            if len(image) == 1:
                break
    assert best_source is not None and best_image is not None
    return AnnotationPlacement(
        target=target,
        source=best_source,
        propagated=best_image,
        algorithm="sju-component-count",
        optimal=True,
    )


def place_annotation(
    query: Query,
    db: Database,
    target: Location,
    allow_exponential: bool = True,
    prov: Optional[WhereProvenance] = None,
) -> AnnotationPlacement:
    """Dispatcher realizing the paper's third dichotomy table.

    SPU → branch scan (Theorem 3.3); SJU → component counting
    (Theorem 3.4); anything involving projection and join → exhaustive
    search (NP-hard territory, Theorem 3.2), refused when
    ``allow_exponential=False``.
    """
    if is_spu(query):
        return spu_placement(query, db, target, prov=prov)
    if is_sju(query):
        try:
            return sju_placement(query, db, target)
        except QueryClassError:
            pass  # not in normal form; fall back to the generic engine
    if not allow_exponential:
        raise QueryClassError(
            "query involves projection and join; the annotation placement "
            "problem is NP-hard for this class (Theorem 3.2) — pass "
            "allow_exponential=True to run the exhaustive search"
        )
    return exhaustive_placement(query, db, target, prov=prov)


def side_effect_free_annotation_exists(
    query: Query,
    db: Database,
    target: Location,
    prov: Optional[WhereProvenance] = None,
) -> bool:
    """Decide whether some source annotation reaches only ``target``.

    The decision problem of the table; NP-hard for PJ queries
    (Theorem 3.2).
    """
    try:
        placement = exhaustive_placement(query, db, target, prov=prov)
    except InfeasibleError:
        return False
    return placement.side_effect_free


def verify_placement(
    query: Query,
    db: Database,
    placement: AnnotationPlacement,
    prov: Optional[WhereProvenance] = None,
) -> None:
    """Check a placement against the ground-truth propagation relation.

    Recomputes the forward image of the chosen source location with the
    where-provenance engine and compares; raises :class:`ReproError` on any
    disagreement or if the target is not reached.

    ``prov`` shares a where-provenance computation with the placement that
    produced the plan; the shared cache supplies it by default, so the
    verify step reuses the propagation relation instead of rebuilding it.
    """
    if prov is None:
        prov = cached_where_provenance(
            query, db, view_name=placement.target.relation
        )
    actual = prov.forward(placement.source)
    if actual != placement.propagated:
        raise ReproError(
            f"placement propagation is wrong: recorded "
            f"{sorted(map(str, placement.propagated))}, actual "
            f"{sorted(map(str, actual))}"
        )
    if placement.target not in actual:
        raise ReproError(
            f"placement does not reach the target {placement.target}"
        )
