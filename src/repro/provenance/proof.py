"""Proof trees: derivations of view tuples, made explicit.

The paper describes why-provenance as "the reason, e.g., a proof tree, for
the existence of a data item in the output".  The witness DNF of
:mod:`repro.provenance.why` compresses all proofs into their leaf sets; this
module materializes the proofs themselves:

* :class:`Fact` — a leaf: a base-relation tuple;
* :class:`Derivation` — an internal node: one operator application with the
  sub-proofs of its inputs;
* :func:`derivations` — enumerate the proof trees of a view tuple (bounded
  by ``limit``; there can be exponentially many);
* :func:`render_proof` — an indented ASCII rendering for humans.

The bridge back to witnesses — every proof tree's leaf set is a witness,
and every *minimal* witness is the leaf set of some proof tree — is checked
by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.evaluate import _eval as _evaluate_node  # shared row sets
from repro.algebra.relation import Database, Row
from repro.algebra.schema import Schema
from repro.provenance.locations import SourceTuple

__all__ = ["Fact", "Derivation", "ProofTree", "derivations", "render_proof"]


@dataclass(frozen=True)
class Fact:
    """A proof leaf: tuple ``row`` is in base relation ``relation``."""

    relation: str
    row: Row

    def leaves(self) -> FrozenSet[SourceTuple]:
        """The leaf set (a singleton)."""
        return frozenset({(self.relation, self.row)})

    def __repr__(self) -> str:
        return f"{self.relation}{tuple(self.row)!r}"


@dataclass(frozen=True)
class Derivation:
    """An operator application deriving ``row`` from child proofs.

    ``operator`` is one of ``"select"``, ``"project"``, ``"join"``,
    ``"union"``, ``"rename"``; ``detail`` is a short human-readable
    description of the operator instance.
    """

    operator: str
    detail: str
    row: Row
    children: Tuple["ProofTree", ...]

    def leaves(self) -> FrozenSet[SourceTuple]:
        """All base facts this proof rests on — a witness for ``row``."""
        out: FrozenSet[SourceTuple] = frozenset()
        for child in self.children:
            out |= child.leaves()
        return out

    def __repr__(self) -> str:
        return f"{self.operator}->{tuple(self.row)!r}"


#: A proof tree is a fact or a derivation.
ProofTree = "Fact | Derivation"


def derivations(
    query: Query, db: Database, row: Row, limit: Optional[int] = 100
) -> List["Fact | Derivation"]:
    """All proof trees of ``row`` in ``query(db)``, up to ``limit``.

    Returns an empty list when the row is not in the view.  The enumeration
    is exhaustive when it terminates below the limit; the count of proof
    trees can be exponential (that is Corollary 3.1's point), so the default
    limit is conservative.
    """
    row = tuple(row)
    budget = [limit if limit is not None else float("inf")]
    out: List[Fact | Derivation] = []
    for tree in _derive(query, db, row, {}):
        out.append(tree)
        budget[0] -= 1
        if budget[0] <= 0:
            break
    return out


#: Per-derivation memo of node evaluations, keyed by AST node identity; the
#: query tree keeps every node alive for the duration of the call, so ids
#: are stable.  Without it the recursion re-evaluates shared subtrees once
#: per enumerated child row — exponentially often on nested operators.
_EvalMemo = Dict[int, Tuple[Schema, FrozenSet[Row]]]


def _node_eval(query: Query, db: Database, memo: _EvalMemo):
    cached = memo.get(id(query))
    if cached is None:
        cached = _evaluate_node(query, db)
        memo[id(query)] = cached
    return cached


def _derive(
    query: Query, db: Database, row: Row, memo: _EvalMemo
) -> Iterator["Fact | Derivation"]:
    if isinstance(query, RelationRef):
        if row in db[query.name]:
            yield Fact(query.name, row)
        return

    if isinstance(query, Select):
        schema, _rows = _node_eval(query.child, db, memo)
        query.predicate.validate(schema)
        if not query.predicate.evaluate(schema, row):
            return
        for child in _derive(query.child, db, row, memo):
            yield Derivation("select", f"σ[{query.predicate!r}]", row, (child,))
        return

    if isinstance(query, Project):
        schema, rows = _node_eval(query.child, db, memo)
        positions = schema.positions(query.attributes)
        for child_row in sorted(set(rows), key=repr):
            if tuple(child_row[i] for i in positions) != row:
                continue
            for child in _derive(query.child, db, child_row, memo):
                yield Derivation(
                    "project", f"Π[{', '.join(query.attributes)}]", row, (child,)
                )
        return

    if isinstance(query, Join):
        left_schema, _ = _node_eval(query.left, db, memo)
        right_schema, _ = _node_eval(query.right, db, memo)
        out_schema = left_schema.join(right_schema)
        left_row = tuple(
            row[out_schema.index_of(a)] for a in left_schema.attributes
        )
        right_row = tuple(
            row[out_schema.index_of(a)] for a in right_schema.attributes
        )
        for left in _derive(query.left, db, left_row, memo):
            for right in _derive(query.right, db, right_row, memo):
                yield Derivation("join", "⋈", row, (left, right))
        return

    if isinstance(query, Union):
        left_schema = query.left.output_schema(
            {name: db[name].schema for name in db}
        )
        right_schema = query.right.output_schema(
            {name: db[name].schema for name in db}
        )
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError("union of incompatible schemas")
        yield from (
            Derivation("union", "∪ (left)", row, (child,))
            for child in _derive(query.left, db, row, memo)
        )
        reorder = left_schema.positions(right_schema.attributes)
        right_row = tuple(row[i] for i in reorder)
        yield from (
            Derivation("union", "∪ (right)", row, (child,))
            for child in _derive(query.right, db, right_row, memo)
        )
        return

    if isinstance(query, Rename):
        for child in _derive(query.child, db, row, memo):
            pairs = ", ".join(f"{o}->{n}" for o, n in query.mapping)
            yield Derivation("rename", f"δ[{pairs}]", row, (child,))
        return

    raise EvaluationError(f"unknown query node {query!r}")


def render_proof(tree: "Fact | Derivation", indent: str = "") -> str:
    """Render a proof tree as indented ASCII.

    >>> print(render_proof(Fact("R", (1, 2))))
    R(1, 2)
    """
    if isinstance(tree, Fact):
        values = ", ".join(str(v) for v in tree.row)
        return f"{indent}{tree.relation}({values})"
    values = ", ".join(str(v) for v in tree.row)
    head = f"{indent}{tree.detail} => ({values})"
    parts = [head]
    for child in tree.children:
        parts.append(render_proof(child, indent + "  "))
    return "\n".join(parts)
