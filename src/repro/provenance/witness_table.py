"""Array-native witness tables: the CSR form of a view's minimal witnesses.

The bitset kernel's logical object is ``row -> tuple of witness masks``
(:mod:`repro.provenance.bitset`), where each mask is one whole-universe
Python int.  At scale the ints dominate: every scan/merge/join of the
annotated executor pays O(universe/64) words per mask however few bits are
set, and every derived structure (segmented view, inverted index, shard
snapshot) re-walks the big ints to get the bit ids back out.

:class:`WitnessTable` stores the same witness sets as three flat arrays —
the compressed-sparse-row layout :class:`~repro.parallel.shards.
ShardSnapshot` already uses on disk:

* ``row_offsets`` (``nrows + 1``): row ``i``'s witnesses are the span
  ``[row_offsets[i], row_offsets[i+1])``;
* ``wit_offsets`` (``nwits + 1``): witness ``w``'s source-id bits are
  ``bit_ids[wit_offsets[w] : wit_offsets[w+1]]``;
* ``bit_ids``: flat int64 source ids, **ascending within each witness**.

Canonical-order invariant: each row's span is exactly the output of
:func:`~repro.provenance.bitset.minimize_masks` on its witness set —
deduplicated, inclusion-minimal, sorted by ``(popcount, mask value)`` — so
:meth:`to_masks` reproduces the tuple executor's witness tuples element for
element (the dict-of-ints view is a lazy *compatibility* view; the arrays
are the source of truth).

Containers are numpy ``int64`` arrays when the table was built by the
vectorized kernels and plain Python lists when built by the pure-Python
fallback; every method branches on the container, so values — and every
downstream answer — are bit-identical either way (property-tested).
"""

from __future__ import annotations

import itertools
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.provenance.interning import iter_bits
from repro.provenance.segmask import SegmentedMask, segmented_from_bit_runs

try:  # optional acceleration; the list-backed form is bit-identical
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None
    HAVE_NUMPY = False

__all__ = ["WitnessTable"]

#: ``touched_rows`` packs (bit, row) pairs into single int64 keys for the
#: vectorized dedup; above this product the packing could overflow and the
#: pure loop (same answers) runs instead.
_PACK_LIMIT = 2**62


def _as_int_list(container) -> List[int]:
    """A plain list of Python ints, whatever the container kind."""
    if isinstance(container, list):
        return container
    return [int(v) for v in container]


class WitnessTable:
    """A view's minimal witnesses as CSR arrays, aligned with ``rows``."""

    __slots__ = ("rows", "row_offsets", "wit_offsets", "bit_ids", "_masks", "_row_pos")

    def __init__(self, rows, row_offsets, wit_offsets, bit_ids):
        self.rows: Tuple[Tuple, ...] = tuple(rows)
        self.row_offsets = row_offsets
        self.wit_offsets = wit_offsets
        self.bit_ids = bit_ids
        #: Cached dict-of-int-masks compatibility view (the oracle form).
        self._masks: "Optional[Dict[Tuple, Tuple[int, ...]]]" = None
        #: Lazy row -> position map for membership tests.
        self._row_pos: "Optional[Dict[Tuple, int]]" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_masks(cls, witnesses: "Dict[Tuple, Tuple[int, ...]]") -> "WitnessTable":
        """Build from the ``row -> mask tuple`` oracle form (order preserved).

        The input is assumed minimized in canonical order (every producer —
        :func:`~repro.provenance.bitset.minimize_masks` — guarantees it);
        masks decompose to ascending bit ids, so the round trip through
        :meth:`to_masks` is exact.
        """
        row_offsets: List[int] = [0]
        wit_offsets: List[int] = [0]
        bit_ids: List[int] = []
        for masks in witnesses.values():
            for mask in masks:
                bit_ids.extend(iter_bits(mask))
                wit_offsets.append(len(bit_ids))
            row_offsets.append(len(wit_offsets) - 1)
        table = cls(witnesses, row_offsets, wit_offsets, bit_ids)
        table._masks = dict(witnesses)
        return table

    @classmethod
    def from_padded(cls, rows, row_offsets, bits, lens) -> "WitnessTable":
        """Build from the kernels' padded form (numpy only).

        ``bits`` is ``(nwits, width)`` int64 with each witness's ids sorted
        *descending* and ``-1`` padding on the right; ``lens`` counts the
        real bits.  Reversing the columns and dropping the padding yields
        the ascending flat CSR form.
        """
        reversed_bits = bits[:, ::-1]
        flat = reversed_bits[reversed_bits != -1]
        wit_offsets = _np.zeros(bits.shape[0] + 1, dtype=_np.int64)
        _np.cumsum(lens, out=wit_offsets[1:])
        return cls(
            rows,
            _np.ascontiguousarray(row_offsets, dtype=_np.int64),
            wit_offsets,
            _np.ascontiguousarray(flat, dtype=_np.int64),
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    @property
    def witness_count(self) -> int:
        """Total number of witnesses across all rows."""
        return len(self.wit_offsets) - 1

    @property
    def total_bits(self) -> int:
        """Total number of (witness, source id) incidences."""
        return len(self.bit_ids)

    def contains(self, row) -> bool:
        if self._row_pos is None:
            self._row_pos = {r: i for i, r in enumerate(self.rows)}
        return row in self._row_pos

    def memory_bytes(self) -> int:
        """Approximate bytes held by the three CSR arrays."""
        total = 0
        for arr in (self.row_offsets, self.wit_offsets, self.bit_ids):
            if HAVE_NUMPY and isinstance(arr, _np.ndarray):
                total += int(arr.nbytes)
            else:
                total += sys.getsizeof(arr) + 28 * len(arr)
        return total

    def as_lists(self) -> "Tuple[List[int], List[int], List[int]]":
        """The three arrays as plain lists (container-independent equality)."""
        return (
            _as_int_list(self.row_offsets),
            _as_int_list(self.wit_offsets),
            _as_int_list(self.bit_ids),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def to_masks(self) -> "Dict[Tuple, Tuple[int, ...]]":
        """The ``row -> minimized mask tuple`` compatibility view (cached).

        Bit-identical to the tuple executor's table: the canonical-order
        invariant means rebuilding each witness's int from its bits yields
        the same tuples :func:`minimize_masks` would have emitted.
        """
        if self._masks is None:
            row_offsets = _as_int_list(self.row_offsets)
            wit_offsets = _as_int_list(self.wit_offsets)
            bit_ids = _as_int_list(self.bit_ids)
            masks: List[int] = []
            for w in range(len(wit_offsets) - 1):
                mask = 0
                for k in range(wit_offsets[w], wit_offsets[w + 1]):
                    mask |= 1 << bit_ids[k]
                masks.append(mask)
            self._masks = {
                row: tuple(masks[row_offsets[i] : row_offsets[i + 1]])
                for i, row in enumerate(self.rows)
            }
        return self._masks

    def segmented_by_row(self) -> "Dict[Tuple, Tuple[SegmentedMask, ...]]":
        """Each row's witnesses as :class:`SegmentedMask`, from the arrays.

        Equal (mask for mask, in order) to ``SegmentedMask.from_int`` over
        :meth:`to_masks` — but built straight from the bit runs, without
        materializing any whole-universe int.
        """
        seg_masks = segmented_from_bit_runs(self.wit_offsets, self.bit_ids)
        row_offsets = _as_int_list(self.row_offsets)
        return {
            row: tuple(seg_masks[row_offsets[i] : row_offsets[i + 1]])
            for i, row in enumerate(self.rows)
        }

    def touched_rows(self) -> "Dict[int, Tuple[Tuple, ...]]":
        """Inverted index: source bit id -> rows whose universe contains it."""
        rows = self.rows
        if (
            HAVE_NUMPY
            and isinstance(self.bit_ids, _np.ndarray)
            and len(self.bit_ids)
        ):
            nrows = len(rows)
            max_bit = int(self.bit_ids.max())
            if (max_bit + 1) * max(nrows, 1) < _PACK_LIMIT:
                wit_row = _np.repeat(
                    _np.arange(nrows, dtype=_np.int64),
                    _np.diff(self.row_offsets),
                )
                bit_row = _np.repeat(wit_row, _np.diff(self.wit_offsets))
                pairs = _np.unique(
                    _np.asarray(self.bit_ids, dtype=_np.int64) * nrows + bit_row
                )
                bits = pairs // nrows
                row_idx = pairs % nrows
                runs = _np.flatnonzero(
                    _np.concatenate(([True], bits[1:] != bits[:-1]))
                )
                ends = _np.concatenate((runs[1:], [len(pairs)]))
                return {
                    int(bits[s]): tuple(
                        rows[i] for i in row_idx[s:e].tolist()
                    )
                    for s, e in zip(runs.tolist(), ends.tolist())
                }
        row_offsets = _as_int_list(self.row_offsets)
        wit_offsets = _as_int_list(self.wit_offsets)
        bit_ids = _as_int_list(self.bit_ids)
        touched: Dict[int, List[Tuple]] = {}
        for i, row in enumerate(rows):
            seen: set = set()
            for w in range(row_offsets[i], row_offsets[i + 1]):
                for k in range(wit_offsets[w], wit_offsets[w + 1]):
                    seen.add(bit_ids[k])
            for bit in seen:
                touched.setdefault(bit, []).append(row)
        return {bit: tuple(ids) for bit, ids in touched.items()}

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def drop_bits(self, deleted_ids) -> "WitnessTable":
        """A new table with every witness containing a deleted id removed.

        This is the deletion-patch kernel of the write path: deleting the
        source tuples behind ``deleted_ids`` kills exactly the witnesses
        whose monomial mentions one of them, and a row survives iff at
        least one witness remains.  Correctness of keeping the *surviving*
        witnesses untouched: a subset of an inclusion-minimal antichain is
        still an antichain, and filtering a canonically-sorted sequence
        preserves canonical order — so the result is bit-identical to
        rebuilding the table against the post-deletion database (pinned by
        the maintenance property suite).

        Containers follow the source table: numpy in, numpy out; lists in,
        lists out (same values either way).
        """
        doomed = set(int(b) for b in deleted_ids)
        if not doomed:
            return self
        if (
            HAVE_NUMPY
            and isinstance(self.bit_ids, _np.ndarray)
            and isinstance(self.wit_offsets, _np.ndarray)
        ):
            return self._drop_bits_numpy(doomed)
        return self._drop_bits_python(doomed)

    def _drop_bits_numpy(self, doomed: "set") -> "WitnessTable":
        bit_ids = _np.asarray(self.bit_ids, dtype=_np.int64)
        wit_offsets = _np.asarray(self.wit_offsets, dtype=_np.int64)
        row_offsets = _np.asarray(self.row_offsets, dtype=_np.int64)
        hit = _np.isin(bit_ids, _np.fromiter(doomed, dtype=_np.int64))
        if not hit.any():
            return self
        # Per-witness hit counts via cumsum differences (safe on empty spans).
        cs = _np.zeros(len(bit_ids) + 1, dtype=_np.int64)
        _np.cumsum(hit, out=cs[1:])
        wit_hits = cs[wit_offsets[1:]] - cs[wit_offsets[:-1]]
        keep_wit = wit_hits == 0
        # Per-row surviving-witness counts, same trick one level up.
        ks = _np.zeros(len(keep_wit) + 1, dtype=_np.int64)
        _np.cumsum(keep_wit, out=ks[1:])
        row_kept = ks[row_offsets[1:]] - ks[row_offsets[:-1]]
        row_alive = row_kept > 0
        wit_lens = wit_offsets[1:] - wit_offsets[:-1]
        keep_bits = _np.repeat(keep_wit, wit_lens)
        new_bit_ids = _np.ascontiguousarray(bit_ids[keep_bits])
        kept_lens = wit_lens[keep_wit]
        new_wit_offsets = _np.zeros(len(kept_lens) + 1, dtype=_np.int64)
        _np.cumsum(kept_lens, out=new_wit_offsets[1:])
        new_row_offsets = _np.zeros(int(row_alive.sum()) + 1, dtype=_np.int64)
        _np.cumsum(row_kept[row_alive], out=new_row_offsets[1:])
        new_rows = tuple(
            itertools.compress(self.rows, row_alive.tolist())
        )
        return WitnessTable(
            new_rows, new_row_offsets, new_wit_offsets, new_bit_ids
        )

    def masks_of(self, row) -> "Optional[Tuple[int, ...]]":
        """``row``'s minimized mask tuple, or ``None`` when absent.

        A point lookup for the write path's insert merge — decodes one
        row's spans without materializing the whole :meth:`to_masks` view.
        """
        if self._masks is not None:
            return self._masks.get(row)
        if not self.contains(row):
            return None
        i = self._row_pos[row]
        row_offsets = _as_int_list(self.row_offsets)
        wit_offsets = _as_int_list(self.wit_offsets)
        masks: List[int] = []
        for w in range(row_offsets[i], row_offsets[i + 1]):
            mask = 0
            for k in range(wit_offsets[w], wit_offsets[w + 1]):
                mask |= 1 << int(self.bit_ids[k])
            masks.append(mask)
        return tuple(masks)

    def merge_rows(self, updates: "Dict[Tuple, Tuple[int, ...]]") -> "WitnessTable":
        """A new table with each row in ``updates`` holding exactly the
        given (minimized, canonical-order) mask tuple.

        This is the insert-patch kernel of the write path: rows untouched
        by the delta keep their CSR spans (one vectorized copy, no mask
        decoding); updated rows are re-encoded from their merged masks and
        appended, and an empty mask tuple removes the row.  Containers
        follow the source table, like :meth:`drop_bits`.
        """
        if not updates:
            return self
        if self._row_pos is None:
            self._row_pos = {r: i for i, r in enumerate(self.rows)}
        replaced = set()
        app_rows: List[Tuple] = []
        app_bits: List[int] = []
        app_wit_lens: List[int] = []
        app_row_wits: List[int] = []
        for row, masks in updates.items():
            pos = self._row_pos.get(row)
            if pos is not None:
                replaced.add(pos)
            if not masks:
                continue
            app_rows.append(row)
            app_row_wits.append(len(masks))
            for mask in masks:
                bits = list(iter_bits(mask))
                app_bits.extend(bits)
                app_wit_lens.append(len(bits))
        if (
            HAVE_NUMPY
            and isinstance(self.bit_ids, _np.ndarray)
            and isinstance(self.wit_offsets, _np.ndarray)
        ):
            return self._merge_rows_numpy(
                replaced, app_rows, app_bits, app_wit_lens, app_row_wits
            )
        return self._merge_rows_python(
            replaced, app_rows, app_bits, app_wit_lens, app_row_wits
        )

    def _merge_rows_numpy(
        self, replaced, app_rows, app_bits, app_wit_lens, app_row_wits
    ) -> "WitnessTable":
        row_offsets = _np.asarray(self.row_offsets, dtype=_np.int64)
        wit_offsets = _np.asarray(self.wit_offsets, dtype=_np.int64)
        bit_ids = _np.asarray(self.bit_ids, dtype=_np.int64)
        keep_row = _np.ones(len(self.rows), dtype=bool)
        if replaced:
            keep_row[_np.fromiter(replaced, dtype=_np.int64)] = False
        row_wits = row_offsets[1:] - row_offsets[:-1]
        wit_lens = wit_offsets[1:] - wit_offsets[:-1]
        keep_wit = _np.repeat(keep_row, row_wits)
        keep_bit = _np.repeat(keep_wit, wit_lens)
        kept_row_wits = row_wits[keep_row]
        kept_wit_lens = wit_lens[keep_wit]
        new_row_wits = _np.concatenate(
            [kept_row_wits, _np.asarray(app_row_wits, dtype=_np.int64)]
        )
        new_wit_lens = _np.concatenate(
            [kept_wit_lens, _np.asarray(app_wit_lens, dtype=_np.int64)]
        )
        new_bit_ids = _np.concatenate(
            [bit_ids[keep_bit], _np.asarray(app_bits, dtype=_np.int64)]
        )
        new_row_offsets = _np.zeros(len(new_row_wits) + 1, dtype=_np.int64)
        _np.cumsum(new_row_wits, out=new_row_offsets[1:])
        new_wit_offsets = _np.zeros(len(new_wit_lens) + 1, dtype=_np.int64)
        _np.cumsum(new_wit_lens, out=new_wit_offsets[1:])
        new_rows = tuple(
            itertools.compress(self.rows, keep_row.tolist())
        ) + tuple(app_rows)
        return WitnessTable(
            new_rows,
            new_row_offsets,
            new_wit_offsets,
            _np.ascontiguousarray(new_bit_ids),
        )

    def _merge_rows_python(
        self, replaced, app_rows, app_bits, app_wit_lens, app_row_wits
    ) -> "WitnessTable":
        row_offsets = _as_int_list(self.row_offsets)
        wit_offsets = _as_int_list(self.wit_offsets)
        bit_ids = _as_int_list(self.bit_ids)
        new_rows: List[Tuple] = []
        new_row_offsets: List[int] = [0]
        new_wit_offsets: List[int] = [0]
        new_bit_ids: List[int] = []
        for i, row in enumerate(self.rows):
            if i in replaced:
                continue
            for w in range(row_offsets[i], row_offsets[i + 1]):
                new_bit_ids.extend(bit_ids[wit_offsets[w] : wit_offsets[w + 1]])
                new_wit_offsets.append(len(new_bit_ids))
            new_rows.append(row)
            new_row_offsets.append(len(new_wit_offsets) - 1)
        cursor = 0
        bit_cursor = 0
        for row, nwits in zip(app_rows, app_row_wits):
            for _ in range(nwits):
                span = app_wit_lens[cursor]
                new_bit_ids.extend(app_bits[bit_cursor : bit_cursor + span])
                bit_cursor += span
                new_wit_offsets.append(len(new_bit_ids))
                cursor += 1
            new_rows.append(row)
            new_row_offsets.append(len(new_wit_offsets) - 1)
        return WitnessTable(
            new_rows, new_row_offsets, new_wit_offsets, new_bit_ids
        )

    def _drop_bits_python(self, doomed: "set") -> "WitnessTable":
        row_offsets = _as_int_list(self.row_offsets)
        wit_offsets = _as_int_list(self.wit_offsets)
        bit_ids = _as_int_list(self.bit_ids)
        new_rows: List[Tuple] = []
        new_row_offsets: List[int] = [0]
        new_wit_offsets: List[int] = [0]
        new_bit_ids: List[int] = []
        for i, row in enumerate(self.rows):
            kept = 0
            for w in range(row_offsets[i], row_offsets[i + 1]):
                span = bit_ids[wit_offsets[w] : wit_offsets[w + 1]]
                if any(b in doomed for b in span):
                    continue
                new_bit_ids.extend(span)
                new_wit_offsets.append(len(new_bit_ids))
                kept += 1
            if kept:
                new_rows.append(row)
                new_row_offsets.append(len(new_wit_offsets) - 1)
        if len(new_bit_ids) == len(bit_ids):
            return self
        return WitnessTable(
            new_rows, new_row_offsets, new_wit_offsets, new_bit_ids
        )

    # ------------------------------------------------------------------
    # Flat-file (zero-copy) form
    # ------------------------------------------------------------------
    def write_file(self, path: str) -> None:
        """Serialize to the flat container of :mod:`repro.columnar.flatfile`.

        The CSR arrays go in as int64 sections (memory-mappable on attach,
        no re-encoding); the row tuples ride along as one pickled blob.
        """
        import pickle

        from repro.columnar.flatfile import write_flat

        write_flat(
            path,
            {"kind": "witness-table", "nrows": len(self.rows)},
            {
                "row_offsets": self.row_offsets,
                "wit_offsets": self.wit_offsets,
                "bit_ids": self.bit_ids,
            },
            {"rows": pickle.dumps(self.rows, protocol=pickle.HIGHEST_PROTOCOL)},
        )

    @classmethod
    def attach_file(cls, path: str) -> "WitnessTable":
        """Attach a table written by :meth:`write_file` (arrays mmap-backed)."""
        import pickle

        from repro.columnar.flatfile import read_flat

        meta, arrays, blobs = read_flat(path)
        if meta.get("kind") != "witness-table":
            raise ValueError(f"{path!r} does not hold a WitnessTable")
        return cls(
            pickle.loads(blobs["rows"]),
            arrays["row_offsets"],
            arrays["wit_offsets"],
            arrays["bit_ids"],
        )

    def __repr__(self) -> str:
        return (
            f"WitnessTable({len(self.rows)} rows, {self.witness_count} "
            f"witnesses, {self.total_bits} bits)"
        )
