"""Cui–Widom lineage: the paper's cited baseline for deletion translation.

The paper contrasts its complexity results with the lineage system of Cui,
Widom and Wiener ("Tracing the Lineage of View Data in a Data Warehousing
Environment", TODS 2000) and the deletion-translation algorithm built on it
(Cui & Widom, 2001, reference [14]): lineage information is used "as a
starting point, to enumerate all candidate witnesses for a deletion", giving
an *exact* (side-effect-free) deletion-to-deletion translation whenever one
exists.

*Lineage* here is the per-relation set of source tuples that contribute to a
view tuple through **some** derivation.  It differs from why-provenance:

* lineage is a flat set per base relation — it forgets which combinations of
  tuples jointly derive the view tuple;
* lineage includes every contributing tuple, including tuples that appear
  only in non-minimal witnesses (e.g. through an absorbed union branch),
  whereas the minimal-witness basis may drop them.

The invariant ``lineage(t) ⊇ union of t's minimal witnesses`` is checked in
the tests.

:func:`cui_widom_translation` reproduces the baseline behaviour: starting
from the lineage of the doomed tuple, enumerate candidate witness-destroying
deletion sets and return one with **no side effects** on the view, or None
when no side-effect-free translation exists.  Consistent with the paper's
observation (and Theorem 2.1), this procedure is worst-case exponential: it
is guarded by a node budget.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import EvaluationError, InfeasibleError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.relation import Database, Row
from repro.algebra.schema import Schema
from repro.provenance.cache import cached_why_provenance
from repro.provenance.locations import SourceTuple
from repro.provenance.why import WhyProvenance
from repro.solvers.setcover import enumerate_minimal_hitting_sets

__all__ = ["lineage", "lineage_of", "cui_widom_translation"]

#: Lineage of one view tuple: relation name → contributing rows.
Lineage = Dict[str, FrozenSet[Row]]


def lineage(query: Query, db: Database) -> Dict[Row, Lineage]:
    """Compute the Cui–Widom lineage of every view tuple.

    Returns a map from view row to its lineage (relation name → set of
    contributing source rows).
    """
    _, table = _eval(query, db)
    return {
        row: {name: frozenset(rows) for name, rows in entry.items()}
        for row, entry in table.items()
    }


def lineage_of(query: Query, db: Database, row: Row) -> Lineage:
    """Lineage of a single view tuple.

    Raises :class:`InfeasibleError` when the row is not in the view.
    """
    table = lineage(query, db)
    row = tuple(row)
    if row not in table:
        raise InfeasibleError(f"row {row!r} is not in the view")
    return table[row]


_MutableLineage = Dict[str, Set[Row]]


def _merge(into: _MutableLineage, other: "Dict[str, Set[Row]] | Lineage") -> None:
    for name, rows in other.items():
        into.setdefault(name, set()).update(rows)


def _eval(query: Query, db: Database) -> Tuple[Schema, Dict[Row, _MutableLineage]]:
    """Compositional lineage evaluation: (schema, row → lineage)."""
    if isinstance(query, RelationRef):
        relation = db[query.name]
        return relation.schema, {
            row: {query.name: {row}} for row in relation.rows
        }

    if isinstance(query, Select):
        schema, table = _eval(query.child, db)
        query.predicate.validate(schema)
        kept = {
            row: entry
            for row, entry in table.items()
            if query.predicate.evaluate(schema, row)
        }
        return schema, kept

    if isinstance(query, Project):
        schema, table = _eval(query.child, db)
        out_schema = schema.project(query.attributes)
        positions = schema.positions(query.attributes)
        out: Dict[Row, _MutableLineage] = {}
        for row, entry in table.items():
            image = tuple(row[i] for i in positions)
            _merge(out.setdefault(image, {}), entry)
        return out_schema, out

    if isinstance(query, Join):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        out_schema = left_schema.join(right_schema)
        shared = left_schema.common(right_schema)
        left_key = left_schema.positions(shared)
        right_key = right_schema.positions(shared)
        right_extra = [
            i
            for i, attr in enumerate(right_schema.attributes)
            if attr not in left_schema
        ]
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in right_table:
            buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)
        out = {}
        for lrow, lentry in left_table.items():
            key = tuple(lrow[i] for i in left_key)
            for rrow in buckets.get(key, ()):
                joined = lrow + tuple(rrow[i] for i in right_extra)
                entry = out.setdefault(joined, {})
                _merge(entry, lentry)
                _merge(entry, right_table[rrow])
        return out_schema, out

    if isinstance(query, Union):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError(
                f"union of incompatible schemas {left_schema.attributes} "
                f"and {right_schema.attributes}"
            )
        reorder = right_schema.positions(left_schema.attributes)
        merged: Dict[Row, _MutableLineage] = {
            row: {name: set(rows) for name, rows in entry.items()}
            for row, entry in left_table.items()
        }
        for row, entry in right_table.items():
            image = tuple(row[i] for i in reorder)
            _merge(merged.setdefault(image, {}), entry)
        return left_schema, merged

    if isinstance(query, Rename):
        schema, table = _eval(query.child, db)
        return schema.rename(query.mapping_dict), table

    raise EvaluationError(f"unknown query node {query!r}")


def cui_widom_translation(
    query: Query,
    db: Database,
    row: Row,
    node_budget: int = 200_000,
    prov: "Optional[WhyProvenance]" = None,
) -> Optional[FrozenSet[SourceTuple]]:
    """Find an exact (side-effect-free) deletion translation, or None.

    Reproduces the behaviour of Cui & Widom's run-time translation algorithm
    [14]: use provenance as the candidate space, enumerate deletion sets that
    destroy every witness of ``row``, and accept the first one that deletes
    no other view tuple.

    Returns the deletion set as ``(relation, row)`` pairs, or None when no
    side-effect-free translation exists (in which case the paper's Theorem
    2.1 explains why deciding this was expensive).
    """
    if prov is None:
        prov = cached_why_provenance(query, db)
    row = tuple(row)
    monomials = prov.witnesses(row)  # InfeasibleError if absent
    for candidate in enumerate_minimal_hitting_sets(
        list(monomials), node_budget=node_budget
    ):
        if not prov.side_effects(row, candidate):
            return candidate
    return None
