"""Interning source tuples to dense integer ids.

The bitset provenance kernel (:mod:`repro.provenance.bitset`) represents a
monomial — a set of source tuples jointly sufficient to derive a view tuple —
as a single Python ``int`` whose set bits name source tuples.  That encoding
needs a bijection between source tuples and small integers; this module
provides it.

A :class:`SourceIndex` assigns each ``(relation, row)`` pair a dense id in
insertion order and supports round-trip decoding.  Building the index from a
:class:`~repro.algebra.relation.Database` walks relations and rows in sorted
order, so ids (and therefore masks) are deterministic per database content —
hash randomization never leaks into the encoding.

The index is append-only: interning never invalidates previously issued ids,
so one index can be shared by every provenance computation over the same
database (and by the provenance cache, :mod:`repro.provenance.cache`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import ReproError
from repro.algebra.relation import Database, Row
from repro.provenance.locations import SourceTuple
from repro.provenance.segmask import SEGMENT_BITS, SegmentedMask

__all__ = ["SourceIndex", "iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class SourceIndex:
    """A bijection between source tuples and dense integer ids.

    >>> index = SourceIndex()
    >>> index.intern(("R", (1, 2)))
    0
    >>> index.intern(("S", (3,)))
    1
    >>> index.intern(("R", (1, 2)))  # idempotent
    0
    >>> index.decode(1)
    ('S', (3,))
    """

    __slots__ = ("_ids", "_tuples")

    def __init__(self) -> None:
        self._ids: Dict[SourceTuple, int] = {}
        self._tuples: List[SourceTuple] = []

    @classmethod
    def from_database(cls, db: Database) -> "SourceIndex":
        """Intern every source tuple of ``db`` in deterministic order."""
        index = cls()
        for name in db:
            for row in db[name].sorted_rows():
                index.intern((name, row))
        return index

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def intern(self, source: SourceTuple) -> int:
        """The id of ``source``, assigning a fresh one on first sight."""
        name, row = source
        key = (name, tuple(row))
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        fresh = len(self._tuples)
        self._ids[key] = fresh
        self._tuples.append(key)
        return fresh

    def id_of(self, source: SourceTuple) -> int:
        """The id of an already-interned source tuple.

        Raises :class:`ReproError` for unknown tuples — use :meth:`intern`
        when the tuple may be new, or :meth:`encode` when unknown tuples
        should be ignored.
        """
        name, row = source
        try:
            return self._ids[(name, tuple(row))]
        except KeyError:
            raise ReproError(f"source tuple {source!r} is not interned") from None

    def bit(self, source: SourceTuple) -> int:
        """The singleton mask ``1 << id`` of an interned source tuple."""
        return 1 << self.id_of(source)

    def encode(self, sources: Iterable[SourceTuple]) -> int:
        """OR the ids of ``sources`` into one mask.

        Source tuples the index has never seen are skipped: an un-interned
        tuple appears in no witness, so including it could not change any
        survival or side-effect answer.
        """
        mask = 0
        ids = self._ids
        for name, row in sources:
            bit = ids.get((name, tuple(row)))
            if bit is not None:
                mask |= 1 << bit
        return mask

    def encode_ids(self, sources: Iterable[SourceTuple]) -> Tuple[int, ...]:
        """The ids of ``sources`` as an ascending tuple (unknown skipped).

        The flat-id twin of :meth:`encode`: the batch mask APIs
        (:meth:`~repro.provenance.bitset.BitsetProvenance.batch_destroyed`
        and friends) accept vector elements in this form as well as int
        masks, for callers that already hold ids and would rather not
        build masks they do not otherwise need.
        """
        ids = self._ids
        found = [
            bit
            for bit in (ids.get((name, tuple(row))) for name, row in sources)
            if bit is not None
        ]
        found.sort()
        return tuple(found)

    def encode_segmented(self, sources: Iterable[SourceTuple]) -> SegmentedMask:
        """The ids of ``sources`` as a :class:`SegmentedMask`.

        The segmented twin of :meth:`encode` (unknown tuples skipped, same
        bits): the form the deletion solvers and the serving engine hand to
        the batch mask APIs, so encoding and every downstream mask op cost
        the touched segments instead of the whole interned universe.
        """
        ids = self._ids
        segs: dict = {}
        for name, row in sources:  # inlined from_bits: this is a hot path
            bit = ids.get((name, tuple(row)))
            if bit is not None:
                seg, offset = divmod(bit, SEGMENT_BITS)
                segs[seg] = segs.get(seg, 0) | (1 << offset)
        return SegmentedMask._trusted(segs)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, bit_index: int) -> SourceTuple:
        """The source tuple with id ``bit_index``."""
        try:
            return self._tuples[bit_index]
        except IndexError:
            raise ReproError(f"no source tuple with id {bit_index}") from None

    def decode_mask(
        self, mask: "int | SegmentedMask"
    ) -> FrozenSet[SourceTuple]:
        """The set of source tuples named by the set bits of ``mask``."""
        tuples = self._tuples
        out: Set[SourceTuple] = set()
        bits = mask.iter_bits() if isinstance(mask, SegmentedMask) else iter_bits(mask)
        for bit_index in bits:
            try:
                out.add(tuples[bit_index])
            except IndexError:
                raise ReproError(f"mask bit {bit_index} is not interned") from None
        return frozenset(out)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, source: object) -> bool:
        if not (isinstance(source, tuple) and len(source) == 2):
            return False
        name, row = source
        try:
            return (name, tuple(row)) in self._ids
        except TypeError:
            return False

    def __iter__(self) -> Iterator[SourceTuple]:
        return iter(self._tuples)

    def __repr__(self) -> str:
        return f"SourceIndex({len(self._tuples)} tuples)"
