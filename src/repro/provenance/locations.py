"""Locations: the unit of annotation.

The paper defines a *location* as a triple ``(R, t, A)`` — attribute ``A`` of
tuple ``t`` of relation ``R``.  Annotations are placed on locations and
propagate between locations; both the where-provenance engine and the
annotation placement algorithms speak in locations.

Tuples have no identifiers under set semantics, so ``t`` is the row's value.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.errors import SchemaError
from repro.algebra.relation import Database, Relation, Row

__all__ = ["Location", "SourceTuple", "locations_of_relation", "validate_location"]

#: A source tuple identified by (relation name, row value).
SourceTuple = Tuple[str, Row]


class Location(NamedTuple):
    """A field of a tuple of a named relation: the triple ``(R, t, A)``."""

    relation: str
    row: Row
    attribute: str

    def __str__(self) -> str:
        values = ", ".join(str(v) for v in self.row)
        return f"({self.relation}, ({values}), {self.attribute})"

    @property
    def source_tuple(self) -> SourceTuple:
        """The (relation, row) pair this location lives on."""
        return (self.relation, self.row)


def locations_of_relation(relation: Relation) -> Tuple[Location, ...]:
    """Every location of a relation, in deterministic order."""
    out = []
    for row in relation.sorted_rows():
        for attribute in relation.schema.attributes:
            out.append(Location(relation.name, row, attribute))
    return tuple(out)


def validate_location(db: Database, location: Location) -> None:
    """Raise :class:`SchemaError` unless ``location`` exists in ``db``.

    Checks that the relation exists, the row is present, and the attribute
    belongs to the relation's schema.
    """
    relation = db[location.relation]
    relation.schema.index_of(location.attribute)
    if tuple(location.row) not in relation:
        raise SchemaError(
            f"row {location.row!r} is not in relation {location.relation!r}"
        )
