"""Why-provenance: minimal witnesses.

A *witness* for a tuple ``t`` in the view ``Q(S)`` is a minimal sub-instance
``S' ⊆ S`` with ``t ∈ Q(S')`` (footnote 4 of the paper).  Why-provenance —
the set of witnesses — is the notion of provenance underlying the deletion
problems of Section 2: deleting ``t`` from the view requires *destroying
every witness*, i.e. deleting at least one source tuple from each.

This module computes, for every view tuple, the complete set of
inclusion-minimal witnesses, by evaluating the query compositionally over a
"witness DNF" annotation: every intermediate tuple carries a set of
*monomials* (a monomial = a set of source tuples sufficient to derive the
tuple), kept minimal under absorption (a monomial that contains another is
redundant).  For monotone SPJRU queries the minimal monomials are exactly
the minimal witnesses:

* base relation: tuple ``t`` of ``R`` has the single monomial ``{(R, t)}``;
* selection keeps the surviving tuples' monomials;
* projection unions the monomials of all contributing tuples;
* join multiplies monomial sets (pairwise union of monomials);
* union unions the two sides' monomial sets;
* renaming leaves monomials untouched;
* after every step, absorption removes non-minimal monomials.

The evaluation runs natively on the **bitset kernel**
(:mod:`repro.provenance.bitset`): monomials are integer bitmasks over
interned source-tuple ids, absorption is ``a & b == a``, and join products
are integer ORs.  Witnesses are decoded back to the ``frozenset``
representation below only at the API boundary, lazily and per row.  The
pre-kernel frozenset evaluator is kept as ``engine="legacy"`` — it is the
oracle the equivalence property tests and the benchmarks compare against.

The number of minimal witnesses can be exponential in the query size — the
paper's Corollary 3.1 shows even deciding membership of a source tuple in
some witness is NP-hard — so this computation is exponential in the worst
case, but linear-ish on the practical instances the benchmarks use.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError, InfeasibleError, ReproError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema
from repro.provenance.bitset import BitsetProvenance, bitset_why_provenance
from repro.provenance.locations import SourceTuple

__all__ = ["WhyProvenance", "why_provenance", "witnesses_of", "minimize_monomials"]

#: A monomial: a set of source tuples jointly sufficient to derive a tuple.
Monomial = FrozenSet[SourceTuple]

#: A tuple's witness basis: its set of minimal monomials.
WitnessSet = FrozenSet[Monomial]


def minimize_monomials(monomials: Set[Monomial]) -> WitnessSet:
    """Remove monomials that strictly contain another (absorption).

    ``{a} + {a, b} = {a}`` in witness algebra: if a sub-instance containing
    only ``a`` already derives the tuple, the larger one is not minimal.
    """
    by_size = sorted(monomials, key=len)
    kept: List[Monomial] = []
    for monomial in by_size:
        if not any(existing <= monomial for existing in kept):
            kept.append(monomial)
    return frozenset(kept)


class WhyProvenance:
    """The why-provenance of a view: every view tuple's minimal witnesses.

    Obtained from :func:`why_provenance`.  Also exposes the derived
    quantities the deletion algorithms need: the witness *universe* (all
    source tuples in any witness of a given view tuple) and the survival
    test (does a view tuple survive a hypothetical deletion set?).

    When backed by a :class:`~repro.provenance.bitset.BitsetProvenance`
    kernel (the default engine), survival and side-effect queries run on
    bitmasks and witnesses decode to frozensets lazily, per row, on first
    access; constructing from a plain witnesses dict still works and keeps
    the pre-kernel behaviour.
    """

    __slots__ = ("_schema", "_witnesses", "_view_name", "_kernel")

    def __init__(
        self,
        schema: Schema,
        witnesses: Optional[Dict[Row, WitnessSet]] = None,
        view_name: str = DEFAULT_VIEW_NAME,
        kernel: Optional[BitsetProvenance] = None,
    ):
        if witnesses is None and kernel is None:
            raise ReproError("WhyProvenance needs a witnesses dict or a kernel")
        self._schema = schema
        self._witnesses: Dict[Row, WitnessSet] = (
            dict(witnesses) if witnesses is not None else {}
        )
        self._view_name = view_name
        self._kernel = kernel

    @classmethod
    def from_kernel(cls, kernel: BitsetProvenance) -> "WhyProvenance":
        """Wrap a bitset kernel, decoding witnesses only on demand."""
        return cls(kernel.schema, None, kernel.view_name, kernel=kernel)

    @property
    def schema(self) -> Schema:
        """Schema of the view."""
        return self._schema

    @property
    def view_name(self) -> str:
        """Name the view was evaluated under."""
        return self._view_name

    @property
    def kernel(self) -> Optional[BitsetProvenance]:
        """The bitmask engine underneath, when built by the default engine."""
        return self._kernel

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All view rows, deterministically ordered."""
        if self._kernel is not None:
            return self._kernel.rows
        return tuple(sorted(self._witnesses, key=repr))

    def relation(self) -> Relation:
        """The view as a plain relation (provenance dropped)."""
        if self._kernel is not None:
            return self._kernel.relation()
        return Relation(self._view_name, self._schema, self._witnesses.keys())

    def witnesses(self, row: Row) -> WitnessSet:
        """The minimal witnesses of ``row``.

        Raises :class:`InfeasibleError` if the row is not in the view.
        """
        row = tuple(row)
        if self._kernel is not None:
            cached = self._witnesses.get(row)
            if cached is None:
                cached = self._kernel.decode_witnesses(row)  # InfeasibleError
                self._witnesses[row] = cached
            return cached
        if row not in self._witnesses:
            raise InfeasibleError(f"row {row!r} is not in the view")
        return self._witnesses[row]

    def witness_universe(self, row: Row) -> FrozenSet[SourceTuple]:
        """All source tuples participating in some minimal witness of ``row``."""
        if self._kernel is not None:
            return self._kernel.index.decode_mask(self._kernel.universe_mask(row))
        universe: Set[SourceTuple] = set()
        for monomial in self.witnesses(row):
            universe |= monomial
        return frozenset(universe)

    def survives(self, row: Row, deletions: FrozenSet[SourceTuple]) -> bool:
        """True if ``row`` still has a witness disjoint from ``deletions``.

        Because every witness contains a minimal witness, checking the
        minimal ones is sound: the view tuple survives a deletion set iff
        some *minimal* witness is untouched.
        """
        if self._kernel is not None:
            return self._kernel.survives_mask(
                row, self._kernel.encode_deletions_auto(deletions)
            )
        return any(not (monomial & deletions) for monomial in self.witnesses(row))

    def side_effects(
        self, target: Row, deletions: FrozenSet[SourceTuple]
    ) -> FrozenSet[Row]:
        """View rows other than ``target`` destroyed by ``deletions``."""
        target = tuple(target)
        if self._kernel is not None:
            return self._kernel.side_effects_mask(
                target, self._kernel.encode_deletions_auto(deletions)
            )
        destroyed = {
            row
            for row in self._witnesses
            if row != target and not self.survives(row, deletions)
        }
        return frozenset(destroyed)

    def surviving_rows(self, deletions: FrozenSet[SourceTuple]) -> FrozenSet[Row]:
        """The view after hypothetically deleting ``deletions``.

        Equal to re-evaluating the query over ``db.delete(deletions)`` but
        answered from the witnesses, without touching the database.
        """
        if self._kernel is not None:
            return self._kernel.surviving_rows(
                self._kernel.encode_deletions_auto(deletions)
            )
        return frozenset(
            row for row in self._witnesses if self.survives(row, deletions)
        )

    def batch_side_effects(
        self,
        target: Row,
        deletion_sets: "Sequence[FrozenSet[SourceTuple]]",
        workers: "int | None" = None,
    ) -> "List[FrozenSet[Row]]":
        """:meth:`side_effects` for a whole vector of candidate deletions.

        The batched inner loop of the exact deletion solvers: on the bitset
        kernel the whole candidate vector is answered from the witness
        masks through the inverted index — sharded across ``workers`` when
        more than one is requested (:mod:`repro.parallel`).  Without a
        kernel (legacy engine) this degrades to a per-candidate loop with
        identical answers, and ``workers`` is ignored.
        """
        if self._kernel is not None:
            kernel = self._kernel
            masks = [kernel.encode_deletions_auto(d) for d in deletion_sets]
            return kernel.batch_side_effects_mask(target, masks, workers=workers)
        return [self.side_effects(target, d) for d in deletion_sets]

    def __len__(self) -> int:
        if self._kernel is not None:
            return len(self._kernel)
        return len(self._witnesses)

    def __contains__(self, row: object) -> bool:
        if self._kernel is not None:
            return row in self._kernel
        return row in self._witnesses

    def as_dict(self) -> Dict[Row, WitnessSet]:
        """A copy of the underlying row → witness-set mapping."""
        if self._kernel is not None:
            return self._kernel.decode_all()
        return dict(self._witnesses)


def why_provenance(
    query: Query,
    db: Database,
    view_name: str = DEFAULT_VIEW_NAME,
    engine: str = "bitset",
    store: "object | None" = None,
) -> WhyProvenance:
    """Evaluate ``query`` over ``db`` carrying minimal-witness annotations.

    Returns a :class:`WhyProvenance` for the whole view.  ``engine`` selects
    the evaluator: ``"bitset"`` (default) runs on the integer-bitmask kernel;
    ``"legacy"`` runs the original frozenset evaluator — kept as the oracle
    for the equivalence tests and the old-vs-new benchmarks.  ``store`` (a
    :class:`repro.columnar.store.ColumnStore` over this exact ``db``) lets
    the bitset engine run the annotated evaluation on the columnar kernels;
    the resulting witness table is bit-identical either way.
    """
    if engine == "bitset":
        kernel = bitset_why_provenance(query, db, view_name, store=store)
        return WhyProvenance.from_kernel(kernel)
    if engine == "legacy":
        schema, table = _eval(query, db)
        return WhyProvenance(schema, table, view_name)
    raise ReproError(f"unknown why-provenance engine {engine!r}")


def witnesses_of(query: Query, db: Database, row: Row) -> WitnessSet:
    """Convenience: the minimal witnesses of a single view row."""
    return why_provenance(query, db).witnesses(row)


def _eval(query: Query, db: Database) -> Tuple[Schema, Dict[Row, WitnessSet]]:
    """Legacy frozenset evaluation: (schema, row → minimal monomials)."""
    if isinstance(query, RelationRef):
        relation = db[query.name]
        table = {
            row: frozenset({frozenset({(query.name, row)})}) for row in relation.rows
        }
        return relation.schema, table

    if isinstance(query, Select):
        schema, table = _eval(query.child, db)
        query.predicate.validate(schema)
        kept = {
            row: wits
            for row, wits in table.items()
            if query.predicate.evaluate(schema, row)
        }
        return schema, kept

    if isinstance(query, Project):
        schema, table = _eval(query.child, db)
        out_schema = schema.project(query.attributes)
        positions = schema.positions(query.attributes)
        merged: Dict[Row, Set[Monomial]] = {}
        for row, wits in table.items():
            image = tuple(row[i] for i in positions)
            merged.setdefault(image, set()).update(wits)
        return out_schema, {
            row: minimize_monomials(monomials) for row, monomials in merged.items()
        }

    if isinstance(query, Join):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        out_schema = left_schema.join(right_schema)
        shared = left_schema.common(right_schema)
        left_key = left_schema.positions(shared)
        right_key = right_schema.positions(shared)
        right_extra = [
            i
            for i, attr in enumerate(right_schema.attributes)
            if attr not in left_schema
        ]
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in right_table:
            buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)
        out: Dict[Row, Set[Monomial]] = {}
        for lrow, lwits in left_table.items():
            key = tuple(lrow[i] for i in left_key)
            for rrow in buckets.get(key, ()):
                joined = lrow + tuple(rrow[i] for i in right_extra)
                products = {
                    lm | rm for lm in lwits for rm in right_table[rrow]
                }
                out.setdefault(joined, set()).update(products)
        return out_schema, {
            row: minimize_monomials(monomials) for row, monomials in out.items()
        }

    if isinstance(query, Union):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError(
                f"union of incompatible schemas {left_schema.attributes} "
                f"and {right_schema.attributes}"
            )
        reorder = right_schema.positions(left_schema.attributes)
        merged: Dict[Row, Set[Monomial]] = {
            row: set(wits) for row, wits in left_table.items()
        }
        for row, wits in right_table.items():
            image = tuple(row[i] for i in reorder)
            merged.setdefault(image, set()).update(wits)
        return left_schema, {
            row: minimize_monomials(monomials) for row, monomials in merged.items()
        }

    if isinstance(query, Rename):
        schema, table = _eval(query.child, db)
        return schema.rename(query.mapping_dict), table

    raise EvaluationError(f"unknown query node {query!r}")
