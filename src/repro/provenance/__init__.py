"""Provenance engines: why-provenance, where-provenance, lineage.

The paper's two view-update problems correspond to two distinct notions of
provenance:

* the deletion problems of Section 2 are governed by **why-provenance** —
  the minimal witnesses of a view tuple (:mod:`repro.provenance.why`);
* the annotation problems of Section 3 are governed by **where-provenance**
  — the copy paths annotations travel (:mod:`repro.provenance.where`);
* the Cui–Widom **lineage** baseline the paper compares against is in
  :mod:`repro.provenance.lineage`.

The why-provenance engine runs on the **bitset kernel** of
:mod:`repro.provenance.bitset` — witnesses as integer bitmasks over
interned source tuples (:mod:`repro.provenance.interning`).  Both the why-
and where-provenance engines share one memoized computation per
``(query, db)`` pair through :mod:`repro.provenance.cache`.
"""

from repro.provenance.locations import (
    Location,
    SourceTuple,
    locations_of_relation,
    validate_location,
)
from repro.provenance.interning import SourceIndex, iter_bits
from repro.provenance.segmask import (
    SEGMENT_BITS,
    SegmentedMask,
    popcount,
    segmented_from_bit_runs,
)
from repro.provenance.witness_table import WitnessTable
from repro.provenance.bitset import (
    BitsetProvenance,
    bitset_why_provenance,
    minimize_masks,
)
from repro.provenance.cache import (
    ProvenanceCache,
    cached_plan,
    cached_where_provenance,
    cached_why_provenance,
    provenance_cache,
)
from repro.provenance.why import (
    WhyProvenance,
    minimize_monomials,
    why_provenance,
    witnesses_of,
)
from repro.provenance.where import (
    WhereProvenance,
    annotate,
    where_provenance,
)
from repro.provenance.proof import (
    Derivation,
    Fact,
    derivations,
    render_proof,
)
from repro.provenance.lineage import (
    cui_widom_translation,
    lineage,
    lineage_of,
)

__all__ = [
    "Location",
    "SourceTuple",
    "locations_of_relation",
    "validate_location",
    "SourceIndex",
    "iter_bits",
    "SEGMENT_BITS",
    "SegmentedMask",
    "popcount",
    "segmented_from_bit_runs",
    "WitnessTable",
    "BitsetProvenance",
    "bitset_why_provenance",
    "minimize_masks",
    "ProvenanceCache",
    "provenance_cache",
    "cached_plan",
    "cached_why_provenance",
    "cached_where_provenance",
    "WhyProvenance",
    "why_provenance",
    "witnesses_of",
    "minimize_monomials",
    "WhereProvenance",
    "where_provenance",
    "annotate",
    "lineage",
    "lineage_of",
    "cui_widom_translation",
    "Fact",
    "Derivation",
    "derivations",
    "render_proof",
]
