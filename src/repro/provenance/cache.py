"""A shared memo for provenance computations and compiled plans.

Every deletion solver, the annotation engine, and the enumeration tooling
start by computing the provenance of the same ``(query, db)`` pair — and the
dispatchers routinely call two or three of them back-to-back on identical
inputs.  This module gives them one shared, bounded, identity-keyed cache so
the annotated evaluation runs once per (query, database) instead of once per
call.

Keying and invalidation rules:

* Keys are *object identities* (``id(query)``, ``id(db)``), not values.
  Both :class:`~repro.algebra.ast.Query` and
  :class:`~repro.algebra.relation.Database` are immutable, so a given object
  can never change meaning — identity keying is sound and costs O(1)
  regardless of database size.
* Each entry keeps strong references to its query and database, so an id is
  never reused while its entry is alive (Python ids are only unique among
  live objects).
* The cache is a bounded LRU: inserting past ``maxsize`` evicts the least
  recently used entry, releasing its references.  There is no explicit
  invalidation — updated databases are *new* objects
  (``Database.delete`` returns a copy), which simply miss.
* Long-lived serving processes (:mod:`repro.service`) can additionally
  bound the cache by **approximate bytes** (``max_bytes`` /
  :meth:`ProvenanceCache.set_capacity`): each entry's value is sized with
  a bounded recursive ``sys.getsizeof`` walk at insert time, and inserts
  evict LRU entries until the running total fits.  The default stays
  unbounded by bytes, so batch/benchmark behaviour is unchanged.
  Eviction counts are surfaced in :meth:`ProvenanceCache.stats` next to
  the hit/miss counters.
* All operations are **thread-safe**: a lock guards lookup, insert, and
  the counters, so concurrent readers never tear the stats, and per-key
  *in-flight claims* make a given ``(query, db)`` pair compute/compile at
  most once under races — the first thread claims the key and computes
  **outside** the lock (so a slow cold build never serializes unrelated
  requests, and the compute may freely reenter the cache); racers on the
  same key wait for the claim to resolve and count as hits.

The cache also memoizes **compiled physical plans**
(:func:`repro.algebra.plan.compile_plan`).  An *unoptimized* plan depends
only on the query and the *schemas* of the relations it references; an
*optimized* plan additionally depends on the optimizer level and on the
table statistics the rewriter consulted.  The plan memo therefore keys on
``(id(query), schema signature, optimizer level, stats version)``, where
the stats version buckets per-relation row counts by powers of two
(:func:`repro.algebra.stats.stats_version`): hypothetical databases
produced by ``Database.delete`` differ by a handful of rows, keep their
bucket, and so keep hitting one compiled plan — while a database whose
cardinalities drifted by ~2× or more can never be served a plan optimized
for stale statistics.  Optimized and unoptimized plans for the same query
coexist under distinct keys.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple, TYPE_CHECKING

from repro.algebra.ast import Query
from repro.algebra.optimizer import DEFAULT_OPTIMIZER_LEVEL
from repro.algebra.plan import CompiledPlan, DEFAULT_VIEW_NAME, compile_plan
from repro.algebra.relation import Database
from repro.algebra.stats import TableStatistics, stats_version
from repro.provenance.segmask import SegmentedMask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.provenance.where import WhereProvenance
    from repro.provenance.why import WhyProvenance

__all__ = [
    "ProvenanceCache",
    "provenance_cache",
    "cached_why_provenance",
    "cached_where_provenance",
    "cached_plan",
]

#: (kind, id(query), id(db), view_name)
_Key = Tuple[str, int, int, str]


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass

#: Bounded-walk limits for the approximate entry sizing: provenance objects
#: can hold millions of interned rows, and an exact deep walk would cost as
#: much as the computation it sizes.  The walk visits at most this many
#: nodes and extrapolates containers it truncates.
_SIZE_WALK_LIMIT = 4096


def approx_object_bytes(value: Any, limit: int = _SIZE_WALK_LIMIT) -> int:
    """Approximate deep size of ``value`` in bytes, by bounded traversal.

    ``sys.getsizeof`` over a breadth-first walk of containers, ``__dict__``
    and ``__slots__``, deduplicated by object identity.  Containers whose
    iteration is cut off by the node ``limit`` are extrapolated linearly
    from the sampled prefix, so a huge witness table is *estimated* in
    O(limit) instead of walked in O(table).  This is deliberately an
    estimate — the byte bound it feeds is a memory-pressure valve, not an
    accounting ledger.
    """
    seen = set()
    total = 0
    visited = 0
    stack = [value]
    while stack and visited < limit:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        visited += 1
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects without size
            continue
        # SegmentedMask sizes itself payload-inclusively (__sizeof__ covers
        # the segment dict and its words), so it is a leaf here — walking
        # its internals would double-count every witness mask.
        if (
            isinstance(obj, (str, bytes, int, float, bool, SegmentedMask))
            or obj is None
        ):
            continue
        children: "list" = []
        if isinstance(obj, dict):
            for key, val in obj.items():
                children.append(key)
                children.append(val)
        elif isinstance(obj, (tuple, list, set, frozenset)):
            children.extend(obj)
        else:
            inner = getattr(obj, "__dict__", None)
            if inner is not None:
                children.append(inner)
            # Walk the full MRO: getattr(type, "__slots__") sees only the
            # most-derived class, silently skipping every inherited slot
            # (and a bare-string __slots__ would iterate per character) —
            # which is how mask-heavy kernels used to under-count.
            for klass in type(obj).__mro__:
                slots = klass.__dict__.get("__slots__", ())
                if isinstance(slots, str):
                    slots = (slots,)
                for slot in slots:
                    child = getattr(obj, slot, None)
                    if child is not None:
                        children.append(child)
        budget = limit - visited
        if len(children) > budget:
            # Extrapolate the truncated tail from the sampled prefix.
            sample = children[:budget] if budget else []
            if sample:
                sampled = sum(
                    approx_object_bytes(c, limit=64) for c in sample
                )
                total += int(sampled * (len(children) / len(sample))) - sampled
            stack.extend(sample)
        else:
            stack.extend(children)
    return total


class ProvenanceCache:
    """Bounded identity-keyed LRU memo for provenance objects.

    >>> cache = ProvenanceCache(maxsize=2)
    >>> cache.stats()["hits"], cache.stats()["misses"], cache.stats()["size"]
    (0, 0, 0)
    """

    __slots__ = (
        "_entries",
        "_maxsize",
        "_max_bytes",
        "_bytes",
        "_bytes_high_water",
        "_hits",
        "_misses",
        "_evictions",
        "_plans",
        "_plan_maxsize",
        "_plan_hits",
        "_plan_misses",
        "_plan_evictions",
        "_lock",
        "_inflight",
        "_plan_inflight",
        "_spill_dir",
        "_spilled",
        "_spill_maxsize",
        "_spill_seq",
        "_spills",
        "_spill_attaches",
        "_witness_builds",
        "_witness_build_seconds",
        "_witness_rows",
        "_witness_count",
        "_invalidations",
        "_version_bumps",
    )

    def __init__(
        self,
        maxsize: int = 64,
        plan_maxsize: int = 256,
        max_bytes: "int | None" = None,
        spill_dir: "str | None" = None,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        if plan_maxsize < 1:
            raise ValueError("plan_maxsize must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None: unbounded)")
        #: key -> (query, db, value, approx bytes); query/db kept alive to
        #: pin their ids.
        self._entries: "OrderedDict[_Key, Tuple[Query, Database, Any, int]]" = (
            OrderedDict()
        )
        self._maxsize = maxsize
        self._max_bytes = max_bytes
        self._bytes = 0
        self._bytes_high_water = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        #: On-disk spill of evicted *spillable* values (those exposing the
        #: ``spill_save(path)`` / ``spill_load(path, query, db)`` protocol,
        #: e.g. :class:`repro.columnar.store.ColumnStore`): key -> (query,
        #: db, type, path).  The stub keeps the query/db alive so the
        #: identity key stays valid; a later miss re-attaches from disk
        #: instead of recomputing.  Disabled while ``spill_dir`` is None.
        self._spill_dir = spill_dir
        self._spilled: "OrderedDict[_Key, Tuple[Query, Database, type, str]]" = (
            OrderedDict()
        )
        self._spill_maxsize = 8
        self._spill_seq = 0
        self._spills = 0
        self._spill_attaches = 0
        #: Witness-build observability (fed by bitset_why_provenance): how
        #: many annotated evaluations ran, their wall time, and the shape
        #: of the tables they produced.
        self._witness_builds = 0
        self._witness_build_seconds = 0.0
        self._witness_rows = 0
        self._witness_count = 0
        #: Write-path observability: entries dropped because their database
        #: was displaced, and stats-version bucket moves noted by the
        #: versioned write path.
        self._invalidations = 0
        self._version_bumps = 0
        #: (id(query), schema signature, optimizer level, stats version) ->
        #: plan; CompiledPlan.query keeps the query alive, so its id is
        #: never recycled while the entry lives.
        self._plans: "OrderedDict[Tuple[int, Tuple], CompiledPlan]" = (
            OrderedDict()
        )
        self._plan_maxsize = plan_maxsize
        self._plan_hits = 0
        self._plan_misses = 0
        self._plan_evictions = 0
        # Reentrant for the bookkeeping paths; computes run *outside* it.
        self._lock = threading.RLock()
        #: key -> (owner thread id, event): claims for in-flight computes,
        #: so racers wait instead of duplicating work — and so the owner
        #: thread itself may reenter the cache mid-compute.
        self._inflight: Dict[_Key, Tuple[int, threading.Event]] = {}
        self._plan_inflight: "Dict[Tuple[int, Tuple], Tuple[int, threading.Event]]" = {}

    def set_capacity(
        self,
        maxsize: "int | None" = None,
        plan_maxsize: "int | None" = None,
        max_bytes: "int | None | type(...)" = ...,
        spill_dir: "str | None | type(...)" = ...,
    ) -> None:
        """Rebound a live cache (``None``/``...`` keeps a limit unchanged).

        ``max_bytes`` accepts ``None`` explicitly to lift the byte bound,
        so its "leave unchanged" sentinel is ``...``.  Tightening a bound
        evicts LRU entries immediately.  This is how a long-lived serving
        process (:class:`repro.service.engine.ServiceEngine`) bounds the
        shared process-wide cache without touching library defaults.
        """
        with self._lock:
            if maxsize is not None:
                if maxsize < 1:
                    raise ValueError("maxsize must be positive")
                self._maxsize = maxsize
            if plan_maxsize is not None:
                if plan_maxsize < 1:
                    raise ValueError("plan_maxsize must be positive")
                self._plan_maxsize = plan_maxsize
            if max_bytes is not ...:
                if max_bytes is not None and max_bytes < 1:
                    raise ValueError(
                        "max_bytes must be positive (or None: unbounded)"
                    )
                self._max_bytes = max_bytes
            if spill_dir is not ...:
                if spill_dir is None:
                    self._drop_spilled()
                self._spill_dir = spill_dir
            if self._max_bytes is not None:
                # Entries inserted while unbounded were never sized; size
                # them now so the new bound accounts for the whole cache.
                total = 0
                for key, entry in self._entries.items():
                    if entry[3] == 0:
                        entry = entry[:3] + (approx_object_bytes(entry[2]),)
                        self._entries[key] = entry
                    total += entry[3]
                self._bytes = total
                if self._bytes > self._bytes_high_water:
                    self._bytes_high_water = self._bytes
            self._evict_entries()
            while len(self._plans) > self._plan_maxsize:
                self._plans.popitem(last=False)
                self._plan_evictions += 1

    def _evict_entries(self) -> None:
        """Drop LRU entries until both the entry and byte bounds hold.

        The newest entry always survives, even when it alone exceeds
        ``max_bytes`` — evicting the value just computed would turn an
        over-large result into a recompute-every-call livelock.
        """
        while len(self._entries) > self._maxsize or (
            self._max_bytes is not None
            and self._bytes > self._max_bytes
            and len(self._entries) > 1
        ):
            key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted[3]
            self._evictions += 1
            self._maybe_spill(key, evicted)

    def _maybe_spill(self, key: _Key, entry) -> None:
        """Page an evicted spillable value out to ``spill_dir``.

        A value is spillable when it implements ``spill_save(path) -> bool``
        and its type implements ``spill_load(path, query, db)``.  The stub
        keeps the entry's query/db referenced (pinning the identity key) but
        releases the value itself — that is the memory being reclaimed.
        """
        if self._spill_dir is None:
            return
        query, db, value, _size = entry
        save = getattr(value, "spill_save", None)
        load = getattr(type(value), "spill_load", None)
        if save is None or load is None:
            return
        self._spill_seq += 1
        path = os.path.join(
            self._spill_dir, f"spill-{os.getpid()}-{self._spill_seq}.flat"
        )
        try:
            saved = bool(save(path))
        except Exception:
            saved = False
        if not saved:
            _unlink_quietly(path)
            return
        self._spilled[key] = (query, db, type(value), path)
        self._spills += 1
        while len(self._spilled) > self._spill_maxsize:
            _, stub = self._spilled.popitem(last=False)
            _unlink_quietly(stub[3])

    def _drop_spilled(self) -> None:
        for stub in self._spilled.values():
            _unlink_quietly(stub[3])
        self._spilled.clear()

    def _attach_spilled(self, key: _Key) -> Any:
        """Re-attach a spilled value for ``key``, or None when unavailable.

        Called by the claimant of a missed key; the attach happens outside
        the lock (file IO), mirroring how computes run.
        """
        with self._lock:
            stub = self._spilled.pop(key, None)
        if stub is None:
            return None
        query, db, value_type, path = stub
        try:
            value = value_type.spill_load(path, query, db)
        except Exception:
            value = None
        _unlink_quietly(path)
        if value is not None:
            with self._lock:
                self._spill_attaches += 1
        return value

    def _claim(self, inflight: Dict, key) -> "threading.Event | None":
        """Under the lock: claim ``key`` for this thread, or return the
        event to wait on.  ``None`` means we own the compute (including
        the reentrant case: this thread already owns it)."""
        holder = inflight.get(key)
        if holder is None:
            inflight[key] = (threading.get_ident(), threading.Event())
            return None
        if holder[0] == threading.get_ident():
            return None  # reentrant compute on our own claim
        return holder[1]

    def _release(self, inflight: Dict, key) -> None:
        """Under the lock: resolve our claim and wake the waiters."""
        holder = inflight.get(key)
        if holder is not None and holder[0] == threading.get_ident():
            del inflight[key]
            holder[1].set()

    def get_or_compute(
        self,
        kind: str,
        query: Query,
        db: Database,
        view_name: str,
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``(kind, query, db, view_name)``, or compute it.

        Under concurrency the first caller claims the key and runs
        ``compute`` *outside* the lock; racing callers wait for the claim
        and take the cached value (counted as hits).  Only the claimant
        counts a miss, so each key computes once however many threads race.
        """
        key = (kind, id(query), id(db), view_name)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._hits += 1
                    self._entries.move_to_end(key)
                    return entry[2]
                event = self._claim(self._inflight, key)
                if event is None:
                    self._misses += 1
                    break
            # Another thread is computing this key: wait off-lock, then
            # re-check (its compute may also have failed — then we claim).
            event.wait()
        try:
            # A spilled copy on disk beats recomputing from scratch.
            value = self._attach_spilled(key)
            if value is None:
                value = compute()
        except BaseException:
            with self._lock:
                self._release(self._inflight, key)
            raise
        with self._lock:
            if key not in self._entries:  # reentrant compute may have won
                size = (
                    approx_object_bytes(value)
                    if self._max_bytes is not None
                    else 0
                )
                self._entries[key] = (query, db, value, size)
                self._bytes += size
                if self._bytes > self._bytes_high_water:
                    self._bytes_high_water = self._bytes
                self._evict_entries()
            self._release(self._inflight, key)
            return value

    def seed(
        self,
        kind: str,
        query: Query,
        db: Database,
        view_name: str,
        value: Any,
    ) -> None:
        """Insert a value computed elsewhere (the write path's patched state).

        Incremental maintenance produces provenance/store objects for a
        *new* database snapshot without going through
        :meth:`get_or_compute`; seeding them here means the next read over
        that snapshot hits instead of rebuilding.  An existing entry for
        the key is replaced.
        """
        key = (kind, id(query), id(db), view_name)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[3]
            size = approx_object_bytes(value) if self._max_bytes is not None else 0
            self._entries[key] = (query, db, value, size)
            self._bytes += size
            if self._bytes > self._bytes_high_water:
                self._bytes_high_water = self._bytes
            self._evict_entries()

    def peek(
        self, kind: str, query: Query, db: Database, view_name: str
    ) -> Any:
        """The cached value for the key, or None — never computes.

        Does not touch the hit/miss counters: the write path uses this to
        ask "is there warm state worth patching?", which is not a serving
        request.
        """
        key = (kind, id(query), id(db), view_name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry[2]

    def invalidate_database(self, db: Database) -> int:
        """Drop every entry keyed on this database object; how many dropped.

        The versioned write path calls this after swapping a new snapshot
        in: entries for the displaced snapshot can never be requested
        again (all lookups go through the new object's identity), so
        keeping them would pin the dead database in memory.  The plan memo
        is untouched — plans key on schemas and stats buckets, not
        database identity.  Dropped entries (and spilled stubs) count into
        ``invalidations``.
        """
        dropped = 0
        with self._lock:
            for key in [k for k, e in self._entries.items() if e[1] is db]:
                entry = self._entries.pop(key)
                self._bytes -= entry[3]
                dropped += 1
            for key in [k for k, s in self._spilled.items() if s[1] is db]:
                stub = self._spilled.pop(key)
                _unlink_quietly(stub[3])
                dropped += 1
            self._invalidations += dropped
        return dropped

    def note_version_bump(self) -> None:
        """Record one stats-version bucket move under the write path.

        Called by :class:`repro.versioning.VersionedDatabase` when an
        applied delta moves a relation's row count across a power-of-two
        bucket — the writes after which compiled plans stop being
        reusable.  The complement of this counter staying low is the
        plan-memo survival the write path is designed for.
        """
        with self._lock:
            self._version_bumps += 1

    def plan_for(
        self,
        query: Query,
        db: Database,
        optimizer_level: "int | None" = None,
    ) -> CompiledPlan:
        """The compiled physical plan of ``query`` over ``db``'s schemas.

        ``optimizer_level`` ``None`` means the library default
        (:data:`repro.algebra.optimizer.DEFAULT_OPTIMIZER_LEVEL`); 0
        compiles the query exactly as written.  Plans are memoized by
        query identity, the attribute tuples of the referenced relations,
        the optimizer level, and (for optimized plans) the statistics
        version — bucketed row counts — so hypothetical databases that
        share schemas and size buckets (e.g. produced by
        ``Database.delete``) reuse one compiled plan, while a database
        whose cardinalities changed materially gets a fresh optimized
        compile.  Unknown relation names are not cached — compilation
        raises :class:`~repro.errors.EvaluationError` each call, matching
        the old interpreter.
        """
        level = DEFAULT_OPTIMIZER_LEVEL if optimizer_level is None else optimizer_level
        names = sorted(query.relation_names())
        signature = tuple(
            (name, db[name].schema.attributes if name in db else None)
            for name in names
        )
        version = stats_version(db, names) if level > 0 else None
        key = (id(query), signature, level, version)
        while True:
            with self._lock:
                plan = self._plans.get(key)
                if plan is not None:
                    self._plan_hits += 1
                    self._plans.move_to_end(key)
                    return plan
                event = self._claim(self._plan_inflight, key)
                if event is None:
                    self._plan_misses += 1
                    break
            event.wait()
        try:
            catalog = {name: db[name].schema for name in names if name in db}
            # Lazy: statistics walk every row of the referenced relations,
            # and the optimizer only consults them when it actually
            # reorders a bush.
            stats = (
                (lambda: TableStatistics.from_database(db, names))
                if level > 0
                else None
            )
            plan = compile_plan(query, catalog, optimizer_level=level, stats=stats)
        except BaseException:
            with self._lock:
                self._release(self._plan_inflight, key)
            raise
        with self._lock:
            if key not in self._plans:
                self._plans[key] = plan
                while len(self._plans) > self._plan_maxsize:
                    self._plans.popitem(last=False)
                    self._plan_evictions += 1
            self._release(self._plan_inflight, key)
            return plan

    def peek_plan(
        self,
        query: Query,
        db: Database,
        optimizer_level: "int | None" = None,
    ) -> "CompiledPlan | None":
        """The memoized plan for the key, or None — never compiles.

        Does not touch the plan hit/miss counters or the LRU order: the
        slow-query log uses this to attach the rendered plan of an
        already-served request, which is diagnostics, not serving.
        """
        level = DEFAULT_OPTIMIZER_LEVEL if optimizer_level is None else optimizer_level
        names = sorted(query.relation_names())
        signature = tuple(
            (name, db[name].schema.attributes if name in db else None)
            for name in names
        )
        version = stats_version(db, names) if level > 0 else None
        key = (id(query), signature, level, version)
        with self._lock:
            return self._plans.get(key)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters.

        Benchmarks clear the cache to time cold paths and then report the
        counters; resetting them here keeps those reports scoped to the
        timed run instead of polluted by whatever ran earlier.  Use
        :meth:`reset_stats` to zero the counters without dropping entries.
        """
        with self._lock:
            self._entries.clear()
            self._plans.clear()
            self._bytes = 0
            self._drop_spilled()
            self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters, keeping the cached entries."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._plan_hits = 0
            self._plan_misses = 0
            self._plan_evictions = 0
            self._bytes_high_water = self._bytes
            self._spills = 0
            self._spill_attaches = 0
            self._witness_builds = 0
            self._witness_build_seconds = 0.0
            self._witness_rows = 0
            self._witness_count = 0
            self._invalidations = 0
            self._version_bumps = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters and current sizes, for diagnostics."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "evictions": self._evictions,
                "approx_bytes": self._bytes,
                "bytes_high_water": self._bytes_high_water,
                "max_bytes": self._max_bytes,
                "spills": self._spills,
                "spill_attaches": self._spill_attaches,
                "spilled_entries": len(self._spilled),
                "plan_hits": self._plan_hits,
                "plan_misses": self._plan_misses,
                "plan_size": len(self._plans),
                "plan_evictions": self._plan_evictions,
                "witness_builds": self._witness_builds,
                "witness_build_seconds": self._witness_build_seconds,
                "witness_rows": self._witness_rows,
                "witness_count": self._witness_count,
                "invalidations": self._invalidations,
                "version_bumps": self._version_bumps,
            }

    def note_witness_build(self, seconds: float, rows: int, witnesses: int) -> None:
        """Record one annotated witness-table build (wall time and shape).

        Called by :func:`repro.provenance.bitset.bitset_why_provenance`
        whenever a kernel is (re)built — cache hits never pass through
        here, so the counters measure exactly the cold-start work the
        array-native pipeline is meant to shave.  Surfaced through
        :meth:`stats` and :meth:`repro.service.engine.ServiceEngine.stats`.
        """
        with self._lock:
            self._witness_builds += 1
            self._witness_build_seconds += seconds
            self._witness_rows += rows
            self._witness_count += witnesses

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache all solvers share.
provenance_cache = ProvenanceCache()


def cached_why_provenance(
    query: Query,
    db: Database,
    view_name: str = DEFAULT_VIEW_NAME,
    store: "Any | None" = None,
) -> "WhyProvenance":
    """:func:`~repro.provenance.why.why_provenance` through the shared cache.

    ``store`` (a :class:`repro.columnar.store.ColumnStore` over ``db``) only
    changes *how* a miss computes, never the result, so it is not part of
    the cache key.
    """
    from repro.provenance.why import why_provenance

    return provenance_cache.get_or_compute(
        "why",
        query,
        db,
        view_name,
        lambda: why_provenance(query, db, view_name, store=store),
    )


def cached_plan(
    query: Query, db: Database, optimizer_level: "int | None" = None
) -> CompiledPlan:
    """:func:`~repro.algebra.plan.compile_plan` through the shared cache."""
    return provenance_cache.plan_for(query, db, optimizer_level)


def cached_where_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> "WhereProvenance":
    """:func:`~repro.provenance.where.where_provenance` through the shared cache."""
    from repro.provenance.where import where_provenance

    return provenance_cache.get_or_compute(
        "where",
        query,
        db,
        view_name,
        lambda: where_provenance(query, db, view_name=view_name),
    )
