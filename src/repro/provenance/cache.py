"""A shared memo for provenance computations.

Every deletion solver, the annotation engine, and the enumeration tooling
start by computing the provenance of the same ``(query, db)`` pair — and the
dispatchers routinely call two or three of them back-to-back on identical
inputs.  This module gives them one shared, bounded, identity-keyed cache so
the annotated evaluation runs once per (query, database) instead of once per
call.

Keying and invalidation rules:

* Keys are *object identities* (``id(query)``, ``id(db)``), not values.
  Both :class:`~repro.algebra.ast.Query` and
  :class:`~repro.algebra.relation.Database` are immutable, so a given object
  can never change meaning — identity keying is sound and costs O(1)
  regardless of database size.
* Each entry keeps strong references to its query and database, so an id is
  never reused while its entry is alive (Python ids are only unique among
  live objects).
* The cache is a bounded LRU: inserting past ``maxsize`` evicts the least
  recently used entry, releasing its references.  There is no explicit
  invalidation — updated databases are *new* objects
  (``Database.delete`` returns a copy), which simply miss.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple, TYPE_CHECKING

from repro.algebra.ast import Query
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.provenance.where import WhereProvenance
    from repro.provenance.why import WhyProvenance

__all__ = [
    "ProvenanceCache",
    "provenance_cache",
    "cached_why_provenance",
    "cached_where_provenance",
]

#: (kind, id(query), id(db), view_name)
_Key = Tuple[str, int, int, str]


class ProvenanceCache:
    """Bounded identity-keyed LRU memo for provenance objects.

    >>> cache = ProvenanceCache(maxsize=2)
    >>> cache.stats()
    {'hits': 0, 'misses': 0, 'size': 0}
    """

    __slots__ = ("_entries", "_maxsize", "_hits", "_misses")

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        #: key -> (query, db, value); query/db kept alive to pin their ids.
        self._entries: "OrderedDict[_Key, Tuple[Query, Database, Any]]" = (
            OrderedDict()
        )
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0

    def get_or_compute(
        self,
        kind: str,
        query: Query,
        db: Database,
        view_name: str,
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``(kind, query, db, view_name)``, or compute it."""
        key = (kind, id(query), id(db), view_name)
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry[2]
        self._misses += 1
        value = compute()
        self._entries[key] = (query, db, value)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every entry (used by benchmarks to time cold paths)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters and current size, for tests and diagnostics."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._entries),
        }

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache all solvers share.
provenance_cache = ProvenanceCache()


def cached_why_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> "WhyProvenance":
    """:func:`~repro.provenance.why.why_provenance` through the shared cache."""
    from repro.provenance.why import why_provenance

    return provenance_cache.get_or_compute(
        "why", query, db, view_name, lambda: why_provenance(query, db, view_name)
    )


def cached_where_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> "WhereProvenance":
    """:func:`~repro.provenance.where.where_provenance` through the shared cache."""
    from repro.provenance.where import where_provenance

    return provenance_cache.get_or_compute(
        "where",
        query,
        db,
        view_name,
        lambda: where_provenance(query, db, view_name=view_name),
    )
