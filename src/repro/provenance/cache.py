"""A shared memo for provenance computations and compiled plans.

Every deletion solver, the annotation engine, and the enumeration tooling
start by computing the provenance of the same ``(query, db)`` pair — and the
dispatchers routinely call two or three of them back-to-back on identical
inputs.  This module gives them one shared, bounded, identity-keyed cache so
the annotated evaluation runs once per (query, database) instead of once per
call.

Keying and invalidation rules:

* Keys are *object identities* (``id(query)``, ``id(db)``), not values.
  Both :class:`~repro.algebra.ast.Query` and
  :class:`~repro.algebra.relation.Database` are immutable, so a given object
  can never change meaning — identity keying is sound and costs O(1)
  regardless of database size.
* Each entry keeps strong references to its query and database, so an id is
  never reused while its entry is alive (Python ids are only unique among
  live objects).
* The cache is a bounded LRU: inserting past ``maxsize`` evicts the least
  recently used entry, releasing its references.  There is no explicit
  invalidation — updated databases are *new* objects
  (``Database.delete`` returns a copy), which simply miss.

The cache also memoizes **compiled physical plans**
(:func:`repro.algebra.plan.compile_plan`).  An *unoptimized* plan depends
only on the query and the *schemas* of the relations it references; an
*optimized* plan additionally depends on the optimizer level and on the
table statistics the rewriter consulted.  The plan memo therefore keys on
``(id(query), schema signature, optimizer level, stats version)``, where
the stats version buckets per-relation row counts by powers of two
(:func:`repro.algebra.stats.stats_version`): hypothetical databases
produced by ``Database.delete`` differ by a handful of rows, keep their
bucket, and so keep hitting one compiled plan — while a database whose
cardinalities drifted by ~2× or more can never be served a plan optimized
for stale statistics.  Optimized and unoptimized plans for the same query
coexist under distinct keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple, TYPE_CHECKING

from repro.algebra.ast import Query
from repro.algebra.optimizer import DEFAULT_OPTIMIZER_LEVEL
from repro.algebra.plan import CompiledPlan, DEFAULT_VIEW_NAME, compile_plan
from repro.algebra.relation import Database
from repro.algebra.stats import TableStatistics, stats_version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.provenance.where import WhereProvenance
    from repro.provenance.why import WhyProvenance

__all__ = [
    "ProvenanceCache",
    "provenance_cache",
    "cached_why_provenance",
    "cached_where_provenance",
    "cached_plan",
]

#: (kind, id(query), id(db), view_name)
_Key = Tuple[str, int, int, str]


class ProvenanceCache:
    """Bounded identity-keyed LRU memo for provenance objects.

    >>> cache = ProvenanceCache(maxsize=2)
    >>> cache.stats()["hits"], cache.stats()["misses"], cache.stats()["size"]
    (0, 0, 0)
    """

    __slots__ = (
        "_entries",
        "_maxsize",
        "_hits",
        "_misses",
        "_plans",
        "_plan_maxsize",
        "_plan_hits",
        "_plan_misses",
    )

    def __init__(self, maxsize: int = 64, plan_maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        if plan_maxsize < 1:
            raise ValueError("plan_maxsize must be positive")
        #: key -> (query, db, value); query/db kept alive to pin their ids.
        self._entries: "OrderedDict[_Key, Tuple[Query, Database, Any]]" = (
            OrderedDict()
        )
        self._maxsize = maxsize
        self._hits = 0
        self._misses = 0
        #: (id(query), schema signature, optimizer level, stats version) ->
        #: plan; CompiledPlan.query keeps the query alive, so its id is
        #: never recycled while the entry lives.
        self._plans: "OrderedDict[Tuple[int, Tuple], CompiledPlan]" = (
            OrderedDict()
        )
        self._plan_maxsize = plan_maxsize
        self._plan_hits = 0
        self._plan_misses = 0

    def get_or_compute(
        self,
        kind: str,
        query: Query,
        db: Database,
        view_name: str,
        compute: Callable[[], Any],
    ) -> Any:
        """The cached value for ``(kind, query, db, view_name)``, or compute it."""
        key = (kind, id(query), id(db), view_name)
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry[2]
        self._misses += 1
        value = compute()
        self._entries[key] = (query, db, value)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
        return value

    def plan_for(
        self,
        query: Query,
        db: Database,
        optimizer_level: "int | None" = None,
    ) -> CompiledPlan:
        """The compiled physical plan of ``query`` over ``db``'s schemas.

        ``optimizer_level`` ``None`` means the library default
        (:data:`repro.algebra.optimizer.DEFAULT_OPTIMIZER_LEVEL`); 0
        compiles the query exactly as written.  Plans are memoized by
        query identity, the attribute tuples of the referenced relations,
        the optimizer level, and (for optimized plans) the statistics
        version — bucketed row counts — so hypothetical databases that
        share schemas and size buckets (e.g. produced by
        ``Database.delete``) reuse one compiled plan, while a database
        whose cardinalities changed materially gets a fresh optimized
        compile.  Unknown relation names are not cached — compilation
        raises :class:`~repro.errors.EvaluationError` each call, matching
        the old interpreter.
        """
        level = DEFAULT_OPTIMIZER_LEVEL if optimizer_level is None else optimizer_level
        names = sorted(query.relation_names())
        signature = tuple(
            (name, db[name].schema.attributes if name in db else None)
            for name in names
        )
        version = stats_version(db, names) if level > 0 else None
        key = (id(query), signature, level, version)
        plan = self._plans.get(key)
        if plan is not None:
            self._plan_hits += 1
            self._plans.move_to_end(key)
            return plan
        self._plan_misses += 1
        catalog = {name: db[name].schema for name in names if name in db}
        # Lazy: statistics walk every row of the referenced relations, and
        # the optimizer only consults them when it actually reorders a bush.
        stats = (
            (lambda: TableStatistics.from_database(db, names))
            if level > 0
            else None
        )
        plan = compile_plan(query, catalog, optimizer_level=level, stats=stats)
        self._plans[key] = plan
        while len(self._plans) > self._plan_maxsize:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters.

        Benchmarks clear the cache to time cold paths and then report the
        counters; resetting them here keeps those reports scoped to the
        timed run instead of polluted by whatever ran earlier.  Use
        :meth:`reset_stats` to zero the counters without dropping entries.
        """
        self._entries.clear()
        self._plans.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping the cached entries."""
        self._hits = 0
        self._misses = 0
        self._plan_hits = 0
        self._plan_misses = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters and current size, for tests and diagnostics."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._entries),
            "plan_hits": self._plan_hits,
            "plan_misses": self._plan_misses,
            "plan_size": len(self._plans),
        }

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache all solvers share.
provenance_cache = ProvenanceCache()


def cached_why_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> "WhyProvenance":
    """:func:`~repro.provenance.why.why_provenance` through the shared cache."""
    from repro.provenance.why import why_provenance

    return provenance_cache.get_or_compute(
        "why", query, db, view_name, lambda: why_provenance(query, db, view_name)
    )


def cached_plan(
    query: Query, db: Database, optimizer_level: "int | None" = None
) -> CompiledPlan:
    """:func:`~repro.algebra.plan.compile_plan` through the shared cache."""
    return provenance_cache.plan_for(query, db, optimizer_level)


def cached_where_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> "WhereProvenance":
    """:func:`~repro.provenance.where.where_provenance` through the shared cache."""
    from repro.provenance.where import where_provenance

    return provenance_cache.get_or_compute(
        "where",
        query,
        db,
        view_name,
        lambda: where_provenance(query, db, view_name=view_name),
    )
