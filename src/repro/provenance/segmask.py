"""Segmented bitmasks: the source-id bit space sharded into word segments.

The bitset kernel (:mod:`repro.provenance.bitset`) historically held every
witness and deletion mask as one whole-universe Python ``int``, so each AND
/OR/popcount — and each pickled :class:`~repro.parallel.shards.ShardSnapshot`
— cost time and bytes proportional to the *entire* interned source-tuple
universe, however few bits the mask actually set.  This module partitions
the id space of a :class:`~repro.provenance.interning.SourceIndex` into
fixed-width segments of :data:`SEGMENT_BITS` bits and represents a mask
**sparsely**, as ``segment id -> one <= SEGMENT_BITS-bit word``: every
operation then scales with the number of *touched* segments.

Representation and equivalence:

* a :class:`SegmentedMask` stores only nonzero segment words, so two masks
  are equal iff their plain-int forms are equal (:meth:`SegmentedMask.
  to_int` is an exact inverse of :meth:`SegmentedMask.from_int`) — the
  property tests pin bit-identical answers against the int kernel;
* the per-segment word is held as a Python int (fast scalar AND/OR in the
  hot loops); the numpy view of a segment as :data:`SEGMENT_WORDS` little-
  endian ``uint64`` words is available through :meth:`SegmentedMask.
  word_segments`, and bulk conversions (``from_int``, popcount, set-bit
  iteration) run vectorized through numpy when it is importable;
* without numpy — or with :func:`set_force_python` — every path falls back
  to pure Python with bit-identical results, so the library's no-numpy
  degradation extends to segmented masks (CI runs both legs).

The module is deliberately dependency-free within the package: the cache's
memory accounting (:func:`repro.provenance.cache.approx_object_bytes`) and
the parallel layer import it without cycles.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

try:  # numpy vectorizes bulk conversions; the library runs without it.
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "SEGMENT_BITS",
    "SEGMENT_WORDS",
    "HAVE_NUMPY",
    "POPCOUNT_NATIVE",
    "popcount",
    "SegmentedMask",
    "segmented_from_bit_runs",
    "set_force_python",
    "using_numpy",
]

#: Width of one segment, in bits.  512 = 8 cache-line-friendly uint64 words:
#: wide enough that compact universes stay single-segment (no overhead vs a
#: plain int), narrow enough that a 4-bit deletion in a 10^6-bit universe
#: touches at most 4 words instead of ~16k.
SEGMENT_BITS = 512

#: One segment as little-endian ``uint64`` words.
SEGMENT_WORDS = SEGMENT_BITS // 64

_SEGMENT_BYTES = SEGMENT_BITS // 8
_SEG_FULL = (1 << SEGMENT_BITS) - 1

#: True when this interpreter provides ``int.bit_count`` (3.10+) and
#: :func:`popcount` binds it directly instead of the ``bin().count`` shim.
POPCOUNT_NATIVE = hasattr(int, "bit_count")

if POPCOUNT_NATIVE:

    def popcount(value: int) -> int:
        """Number of set bits of ``value`` (native ``int.bit_count``)."""
        return value.bit_count()

else:  # pragma: no cover - pre-3.10 interpreters only

    def popcount(value: int) -> int:
        """Number of set bits of ``value`` (``bin`` fallback, pre-3.10)."""
        return bin(value).count("1")


#: Tests and the no-numpy CI leg pin the pure-Python paths with this; the
#: env var mirrors it so subprocess harnesses can inherit the choice.
_FORCE_PYTHON = os.environ.get("REPRO_SEGMASK_PYTHON", "") not in ("", "0")


def set_force_python(flag: bool) -> None:
    """Pin (or release) the pure-Python conversion paths, for tests.

    Representation and answers are identical either way — this only selects
    which implementation produces them.
    """
    global _FORCE_PYTHON
    _FORCE_PYTHON = bool(flag)


def using_numpy() -> bool:
    """True when the bulk conversion paths currently run on numpy."""
    return HAVE_NUMPY and not _FORCE_PYTHON


def _segments_from_int_python(mask: int) -> Dict[int, int]:
    """``mask`` split into nonzero segment words, pure Python, O(bytes)."""
    nbytes = (mask.bit_length() + 7) // 8
    padded = -(-nbytes // _SEGMENT_BYTES) * _SEGMENT_BYTES
    buf = mask.to_bytes(padded, "little")
    segs: Dict[int, int] = {}
    for seg in range(padded // _SEGMENT_BYTES):
        word = int.from_bytes(
            buf[seg * _SEGMENT_BYTES : (seg + 1) * _SEGMENT_BYTES], "little"
        )
        if word:
            segs[seg] = word
    return segs


def _segments_from_int_numpy(mask: int) -> Dict[int, int]:
    """Same split, with the touched segments located by one C scan."""
    nbytes = (mask.bit_length() + 7) // 8
    padded = -(-nbytes // _SEGMENT_BYTES) * _SEGMENT_BYTES
    buf = mask.to_bytes(padded, "little")
    arr = _np.frombuffer(buf, dtype=_np.uint8).reshape(-1, _SEGMENT_BYTES)
    return {
        seg: int.from_bytes(
            buf[seg * _SEGMENT_BYTES : (seg + 1) * _SEGMENT_BYTES], "little"
        )
        for seg in _np.nonzero(arr.any(axis=1))[0].tolist()
    }


def _iter_word_bits(word: int) -> Iterator[int]:
    """Ascending set-bit offsets of one segment word (low-bit peeling)."""
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


def _rebuild_mask(state: "Tuple[Tuple[int, int], ...]") -> "SegmentedMask":
    """Unpickle hook: rebuild a mask from its (segment, word) pairs."""
    return SegmentedMask._trusted(dict(state))


class SegmentedMask:
    """A sparse bitmask over the interned id space, one word per segment.

    Immutable by convention: every operator returns a new mask and the
    internal segment dict is never exposed mutably.  Hashable, picklable
    (the pickle is the sorted ``(segment, word)`` pairs — representation-
    portable between numpy and pure-Python processes), and usable anywhere
    the kernel previously took an int deletion mask.
    """

    __slots__ = ("_segs", "_hash")

    def __init__(self, segments: "Mapping[int, int] | None" = None):
        segs: Dict[int, int] = {}
        if segments:
            for seg, word in segments.items():
                if seg < 0:
                    raise ValueError("segment ids must be non-negative")
                if not 0 <= word <= _SEG_FULL:
                    raise ValueError(
                        f"segment word out of range for {SEGMENT_BITS} bits"
                    )
                if word:
                    segs[seg] = word
        self._segs = segs
        self._hash: "int | None" = None

    @classmethod
    def _trusted(cls, segs: Dict[int, int]) -> "SegmentedMask":
        """Internal: wrap an already-normalized nonzero-word dict."""
        mask = cls.__new__(cls)
        mask._segs = segs
        mask._hash = None
        return mask

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_int(cls, mask: int) -> "SegmentedMask":
        """The segmented form of a whole-universe int mask (exact)."""
        if mask < 0:
            raise ValueError("masks are non-negative")
        if mask == 0:
            return cls._trusted({})
        if HAVE_NUMPY and not _FORCE_PYTHON:
            return cls._trusted(_segments_from_int_numpy(mask))
        return cls._trusted(_segments_from_int_python(mask))

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "SegmentedMask":
        """The mask with exactly ``bits`` set (ids, not masks)."""
        segs: Dict[int, int] = {}
        for bit in bits:
            if bit < 0:
                raise ValueError("bit ids must be non-negative")
            seg, offset = divmod(bit, SEGMENT_BITS)
            segs[seg] = segs.get(seg, 0) | (1 << offset)
        return cls._trusted(segs)

    @classmethod
    def union(cls, masks: "Iterable[SegmentedMask]") -> "SegmentedMask":
        """OR of any number of masks in one pass."""
        out: Dict[int, int] = {}
        for mask in masks:
            for seg, word in mask._segs.items():
                existing = out.get(seg)
                out[seg] = word if existing is None else existing | word
        return cls._trusted(out)

    def to_int(self) -> int:
        """The equivalent whole-universe int mask (exact inverse)."""
        out = 0
        for seg, word in self._segs.items():
            out |= word << (seg * SEGMENT_BITS)
        return out

    def word_segments(self):
        """``segment id -> SEGMENT_WORDS little-endian uint64 words``.

        Numpy arrays when the numpy paths are active, tuples of ints in the
        pure-Python fallback — same words either way.
        """
        out = {}
        for seg in sorted(self._segs):
            data = self._segs[seg].to_bytes(_SEGMENT_BYTES, "little")
            if HAVE_NUMPY and not _FORCE_PYTHON:
                out[seg] = _np.frombuffer(data, dtype="<u8").copy()
            else:
                out[seg] = tuple(
                    int.from_bytes(data[k * 8 : (k + 1) * 8], "little")
                    for k in range(SEGMENT_WORDS)
                )
        return out

    @classmethod
    def from_word_segments(cls, mapping) -> "SegmentedMask":
        """Inverse of :meth:`word_segments` (either value form)."""
        segs: Dict[int, int] = {}
        for seg, words in mapping.items():
            word = int.from_bytes(
                b"".join(int(w).to_bytes(8, "little") for w in words), "little"
            )
            if word:
                segs[int(seg)] = word
        return cls._trusted(segs)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def segment_ids(self) -> "frozenset[int]":
        """The ids of the touched (nonzero) segments."""
        return frozenset(self._segs)

    def items(self) -> Iterable[Tuple[int, int]]:
        """The ``(segment id, word)`` pairs, unordered (read-only use)."""
        return self._segs.items()

    def get_word(self, seg: int, default: int = 0) -> int:
        """The word of segment ``seg`` (``default`` when untouched)."""
        return self._segs.get(seg, default)

    def segment_count(self) -> int:
        """How many segments are touched."""
        return len(self._segs)

    def bit_count(self) -> int:
        """Total number of set bits (segment-wise popcount)."""
        segs = self._segs
        if (
            HAVE_NUMPY
            and not _FORCE_PYTHON
            and len(segs) >= 16
            and hasattr(_np, "bitwise_count")
        ):
            buf = b"".join(
                word.to_bytes(_SEGMENT_BYTES, "little") for word in segs.values()
            )
            arr = _np.frombuffer(buf, dtype="<u8")
            return int(_np.bitwise_count(arr).sum())
        return sum(popcount(word) for word in segs.values())

    def iter_bits(self) -> Iterator[int]:
        """Yield the set bit ids, ascending."""
        segs = self._segs
        if HAVE_NUMPY and not _FORCE_PYTHON and len(segs) >= 8:
            ordered = sorted(segs)
            buf = b"".join(
                segs[seg].to_bytes(_SEGMENT_BYTES, "little") for seg in ordered
            )
            positions = _np.nonzero(
                _np.unpackbits(
                    _np.frombuffer(buf, dtype=_np.uint8), bitorder="little"
                )
            )[0]
            for pos in positions.tolist():
                seg, offset = divmod(pos, SEGMENT_BITS)
                yield ordered[seg] * SEGMENT_BITS + offset
            return
        for seg in sorted(segs):
            base = seg * SEGMENT_BITS
            for offset in _iter_word_bits(segs[seg]):
                yield base + offset

    def __bool__(self) -> bool:
        return bool(self._segs)

    # ------------------------------------------------------------------
    # Set algebra (all segment-sparse)
    # ------------------------------------------------------------------
    def __and__(self, other: "SegmentedMask") -> "SegmentedMask":
        if not isinstance(other, SegmentedMask):
            return NotImplemented
        a, b = self._segs, other._segs
        if len(b) < len(a):
            a, b = b, a
        out: Dict[int, int] = {}
        for seg, word in a.items():
            w = b.get(seg)
            if w is not None:
                r = word & w
                if r:
                    out[seg] = r
        return SegmentedMask._trusted(out)

    def __or__(self, other: "SegmentedMask") -> "SegmentedMask":
        if not isinstance(other, SegmentedMask):
            return NotImplemented
        a, b = self._segs, other._segs
        if len(b) > len(a):
            a, b = b, a
        out = dict(a)
        for seg, word in b.items():
            existing = out.get(seg)
            out[seg] = word if existing is None else existing | word
        return SegmentedMask._trusted(out)

    def andnot(self, other: "SegmentedMask") -> "SegmentedMask":
        """``self & ~other`` (set difference), segment-sparse."""
        b = other._segs
        out: Dict[int, int] = {}
        for seg, word in self._segs.items():
            w = b.get(seg)
            if w is not None:
                word &= ~w
            if word:
                out[seg] = word
        return SegmentedMask._trusted(out)

    def intersects(self, other: "SegmentedMask") -> bool:
        """True when some bit is set in both masks."""
        a, b = self._segs, other._segs
        if len(b) < len(a):
            a, b = b, a
        for seg, word in a.items():
            w = b.get(seg)
            if w is not None and word & w:
                return True
        return False

    def isdisjoint(self, other: "SegmentedMask") -> bool:
        """True when no bit is set in both masks."""
        return not self.intersects(other)

    def issubset(self, other: "SegmentedMask") -> bool:
        """True when every set bit of ``self`` is set in ``other``."""
        b = other._segs
        for seg, word in self._segs.items():
            w = b.get(seg)
            if w is None or word & w != word:
                return False
        return True

    # ------------------------------------------------------------------
    # Identity, pickling, sizing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentedMask):
            return NotImplemented
        return self._segs == other._segs

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, SegmentedMask):
            return NotImplemented
        return self._segs != other._segs

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(tuple(sorted(self._segs.items())))
            self._hash = h
        return h

    def __reduce__(self):
        # Explicit reduce: the sorted (segment, word) pairs are portable
        # between numpy and pure-Python processes, and an empty state is
        # handled uniformly (a falsy __getstate__ would skip __setstate__).
        return (_rebuild_mask, (tuple(sorted(self._segs.items())),))

    def __sizeof__(self) -> int:
        # Include the segment dict and its words, so sizing a mask as a
        # *leaf* (the cache's approx_object_bytes walk does) accounts the
        # real payload without double-walking the dict.
        return (
            object.__sizeof__(self)
            + sys.getsizeof(self._segs)
            + sum(sys.getsizeof(word) for word in self._segs.values())
        )

    def nbytes(self) -> int:
        """Approximate heap payload of this mask, in bytes."""
        return sys.getsizeof(self)

    def __repr__(self) -> str:
        return (
            f"SegmentedMask({self.bit_count()} bits in "
            f"{len(self._segs)} segments)"
        )


def segmented_from_bit_runs(offsets, bits) -> "list[SegmentedMask]":
    """One :class:`SegmentedMask` per run ``bits[offsets[w]:offsets[w+1]]``.

    The bulk form of :meth:`SegmentedMask.from_bits` for CSR witness
    arrays: the segment/offset split of every bit id is computed once up
    front (vectorized under numpy, a list pass otherwise) and each run is
    folded into a ``_trusted`` segment dict — no per-mask validation, no
    whole-universe ints.  Bit-identical to calling ``from_bits`` run by
    run.
    """
    if HAVE_NUMPY and not _FORCE_PYTHON and not isinstance(bits, list):
        arr = _np.ascontiguousarray(bits, dtype=_np.int64)
        seg_of = (arr // SEGMENT_BITS).tolist()
        off_of = (arr % SEGMENT_BITS).tolist()
        ends = [int(v) for v in offsets]
    else:
        seg_of = [b // SEGMENT_BITS for b in bits]
        off_of = [b % SEGMENT_BITS for b in bits]
        ends = list(offsets) if isinstance(offsets, list) else [int(v) for v in offsets]
    out: "list[SegmentedMask]" = []
    for w in range(len(ends) - 1):
        segs: Dict[int, int] = {}
        for k in range(ends[w], ends[w + 1]):
            seg = seg_of[k]
            segs[seg] = segs.get(seg, 0) | (1 << off_of[k])
        out.append(SegmentedMask._trusted(segs))
    return out
