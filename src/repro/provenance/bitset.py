"""The bitset provenance kernel: minimal witnesses as integer bitmasks.

This is the engine under :func:`repro.provenance.why.why_provenance`.  The
semantics are exactly those of the witness DNF described there; only the
representation changes:

* a *monomial* (a set of source tuples) is one Python ``int`` whose set bits
  index source tuples through a :class:`~repro.provenance.interning.SourceIndex`;
* a tuple's *witness set* is a tuple of masks, kept inclusion-minimal;
* absorption ``a ⊆ b`` is ``a & b == a`` — one machine-word-per-limb AND
  instead of a hashed frozenset comparison;
* the join product of two monomials is ``lm | rm`` on ints;
* survival of a row under a deletion mask ``d`` is ``any(m & d == 0)``;
* side effects use an inverted index from source bit to the view rows whose
  witness universe contains it, so candidate evaluation only touches rows
  the deletion can actually reach instead of scanning the whole view;
* batched hypothetical deletion (:meth:`BitsetProvenance.batch_destroyed`,
  :meth:`BitsetProvenance.batch_side_effects_mask`,
  :meth:`BitsetProvenance.batch_surviving_rows`) answers "which view rows
  survive deleting mask ``m``" for whole vectors of candidate masks without
  re-running the query — the vector-level API under
  :class:`repro.deletion.hypothetical.HypotheticalDeletions`;
* with ``workers > 1`` the batch methods run **sharded**
  (:mod:`repro.parallel`): the vector is partitioned into chunks, each
  chunk answered from an immutable :class:`~repro.parallel.shards.
  ShardSnapshot` of the witness tables (threads share it zero-copy, forked
  processes copy-on-write), and the merge interns identical answers so a
  destroyed set — and the surviving view it induces — is materialized once
  per *distinct* answer instead of once per candidate.  Answers are
  bit-identical to the serial path.

The annotated evaluation itself runs on the **compiled plan layer**
(:mod:`repro.algebra.plan`): :func:`bitset_why_provenance` compiles the
query once through the shared plan memo and executes the plan's
witness-annotated semantics, so schema resolution and column positions are
never recomputed per call.  Decoding back to the public
``frozenset``-of-``frozenset`` representation happens only at the API
boundary (:meth:`BitsetProvenance.decode_witnesses`), so every intermediate
step runs on ints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import ExponentialGuardError, InfeasibleError
from repro.algebra.ast import Query, RelationRef
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.plan import CompiledPlan
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema
from repro.observability.metrics import default_registry as _registry
from repro.parallel import ShardSnapshot, sharded_destroyed_indices
from repro.provenance.cache import cached_plan
from repro.provenance.interning import SourceIndex, iter_bits
from repro.provenance.locations import SourceTuple
from repro.provenance.segmask import SEGMENT_BITS, SegmentedMask, popcount
from repro.provenance.witness_table import WitnessTable

__all__ = [
    "Mask",
    "MaskWitnesses",
    "minimize_masks",
    "BitsetProvenance",
    "bitset_why_provenance",
]

#: A monomial as an integer bitmask over interned source-tuple ids.
Mask = int

#: A deletion, in any form the survival APIs take: a whole-universe int
#: mask, a sequence of source-bit ids, or a :class:`SegmentedMask` —
#: answers are bit-identical across the three (property-tested).
DeletionLike = "int | Sequence[int] | SegmentedMask"

#: A tuple's witness basis: its minimal monomials, as masks.
MaskWitnesses = Tuple[int, ...]

#: Vectors shorter than this answer serially even when ``workers`` > 1:
#: below it the sharded chunk kernel's per-batch set-up costs more than
#: the whole serial scan, and there is nothing to parallelize anyway.
SHARD_MIN_BATCH = 128

#: ``encode_deletions_auto`` stays on plain int masks until the interned
#: universe spans more than this many segments: at or below it the masks
#: are at most a few machine words, so segmented per-segment dict traffic
#: costs more than it saves.
SEGMENTED_AUTO_MIN_SEGMENTS = 4


def minimize_masks(masks: "Set[int] | Iterable[int]") -> MaskWitnesses:
    """Remove masks that strictly contain another (absorption), deduplicated.

    ``a`` absorbs ``b`` when ``a & b == a`` (every bit of ``a`` is in ``b``).
    Scanning in popcount order means a kept mask can never be absorbed by a
    later one — a strict subset always has a strictly smaller popcount — so
    one pass suffices.  For large families the kept masks are indexed by
    their lowest set bit: any absorber of ``m`` has its lowest bit inside
    ``m``, so only the buckets of ``m``'s bits are probed instead of every
    kept mask.
    """
    if not isinstance(masks, (set, frozenset)):
        masks = set(masks)
    if len(masks) <= 1:
        return tuple(masks)
    # The mask value breaks popcount ties so the output tuple is a pure
    # function of the mask *set* — executors that build the same witness
    # sets in a different order (tuple vs columnar) emit identical tuples.
    ordered = sorted(masks, key=lambda mask: (popcount(mask), mask))
    kept: List[int] = []
    if len(ordered) <= 16:
        for mask in ordered:
            for existing in kept:
                if existing & mask == existing:
                    break
            else:
                kept.append(mask)
        return tuple(kept)

    by_low_bit: Dict[int, List[int]] = {}
    for mask in ordered:
        absorbed = False
        remaining = mask
        while remaining:
            low = remaining & -remaining
            bucket = by_low_bit.get(low)
            if bucket is not None:
                for existing in bucket:
                    if existing & mask == existing:
                        absorbed = True
                        break
                if absorbed:
                    break
            remaining ^= low
        if not absorbed:
            kept.append(mask)
            by_low_bit.setdefault(mask & -mask, []).append(mask)
    return tuple(kept)


def _relation_occurrences(query: Query) -> Dict[str, int]:
    """How many :class:`RelationRef` leaves mention each relation name."""
    counts: Dict[str, int] = {}
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, RelationRef):
            counts[node.name] = counts.get(node.name, 0) + 1
        stack.extend(node.children)
    return counts


def _union_segments(masks: "Iterable[SegmentedMask]") -> Dict[int, int]:
    """segment index -> OR of that segment's words across ``masks``."""
    union: Dict[int, int] = {}
    for sm in masks:
        for seg, word in sm._segs.items():
            union[seg] = union.get(seg, 0) | word
    return union


def _touched_add(touched: dict, bit: int, row: Row) -> None:
    rows = touched.get(bit)
    touched[bit] = rows + (row,) if rows else (row,)


def _touched_discard(touched: dict, bit: int, row: Row) -> None:
    rows = touched.get(bit)
    if rows is None:
        return
    kept = tuple(r for r in rows if r != row)
    if kept:
        touched[bit] = kept
    else:
        del touched[bit]


def _join_nonlinear_names(query: Query) -> FrozenSet[str]:
    """Relation names the query is *not* linear in: self-joined names.

    The annotated semantics is a polynomial whose monomials multiply one
    source row per :class:`RelationRef` reached through each
    :class:`~repro.algebra.ast.Join` — so a witness can mention two rows
    of the same relation only when some Join has that relation on both
    sides.  A name appearing several times *additively* (e.g. once per
    Union branch, the SPU shape) still yields witnesses linear in it, and
    the insert delta decomposition stays sound; only the names returned
    here force a full re-annotation.
    """
    from repro.algebra.ast import Join

    nonlinear: Set[str] = set()
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, Join):
            nonlinear.update(
                node.left.relation_names() & node.right.relation_names()
            )
        stack.extend(node.children)
    return frozenset(nonlinear)


class BitsetProvenance:
    """Why-provenance of a view with witnesses held as bitmasks.

    Produced by :func:`bitset_why_provenance`.  This is the object the
    deletion solvers actually compute with; the ``frozenset`` view of the
    same data is available through :meth:`decode_witnesses` and the
    :class:`~repro.provenance.why.WhyProvenance` wrapper.
    """

    __slots__ = (
        "_schema",
        "_view_name",
        "_index",
        "_witnesses",
        "_table",
        "_seg_witnesses",
        "_touched",
        "_snapshot",
        "build_stats",
    )

    def __init__(
        self,
        schema: Schema,
        witnesses: "Dict[Row, MaskWitnesses] | WitnessTable",
        index: SourceIndex,
        view_name: str = DEFAULT_VIEW_NAME,
    ):
        self._schema = schema
        if isinstance(witnesses, WitnessTable):
            # CSR arrays are the source of truth; the dict-of-int-masks view
            # is materialized lazily (it is the bit-identical oracle form).
            self._table: "WitnessTable | None" = witnesses
            self._witnesses: "Dict[Row, MaskWitnesses] | None" = None
        else:
            self._table = None
            self._witnesses = witnesses
        self._index = index
        self._view_name = view_name
        #: Wall-time/shape counters of the annotated build that produced
        #: this kernel (set by :func:`bitset_why_provenance`; None when the
        #: kernel was constructed directly).
        self.build_stats: "Dict[str, object] | None" = None
        #: Lazy inverted index: source bit id -> rows whose universe has it.
        self._touched: "Dict[int, Tuple[Row, ...]] | None" = None
        #: Lazy segmented view of the witness table (built on first
        #: SegmentedMask query; the int/CSR table stays the source of truth).
        self._seg_witnesses: "Dict[Row, Tuple[SegmentedMask, ...]] | None" = None
        #: Lazy immutable snapshot backing the sharded batch path.
        self._snapshot: "ShardSnapshot | None" = None

    def _mask_witnesses(self) -> Dict[Row, MaskWitnesses]:
        """The ``row -> mask tuple`` table (materialized from CSR on demand)."""
        if self._witnesses is None:
            self._witnesses = self._table.to_masks()
        return self._witnesses

    def _view_rows(self):
        """The view's rows, in table order, without materializing masks."""
        if self._witnesses is not None:
            return self._witnesses  # dict iteration yields rows
        return self._table.rows

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Schema of the view."""
        return self._schema

    @property
    def view_name(self) -> str:
        """Name the view was evaluated under."""
        return self._view_name

    @property
    def index(self) -> SourceIndex:
        """The source-tuple interning table masks are expressed over."""
        return self._index

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All view rows, deterministically ordered."""
        return tuple(sorted(self._view_rows(), key=repr))

    def relation(self) -> Relation:
        """The view as a plain relation (provenance dropped)."""
        return Relation(self._view_name, self._schema, self._view_rows())

    def __len__(self) -> int:
        if self._witnesses is not None:
            return len(self._witnesses)
        return len(self._table)

    def __contains__(self, row: object) -> bool:
        if self._witnesses is not None:
            return row in self._witnesses
        return self._table.contains(row)

    # ------------------------------------------------------------------
    # Mask-level queries
    # ------------------------------------------------------------------
    def witness_masks(self, row: Row) -> MaskWitnesses:
        """The minimal witnesses of ``row`` as masks.

        Raises :class:`InfeasibleError` if the row is not in the view.
        """
        row = tuple(row)
        try:
            return self._mask_witnesses()[row]
        except KeyError:
            raise InfeasibleError(f"row {row!r} is not in the view") from None

    def universe_mask(self, row: Row) -> int:
        """OR of all witness masks of ``row``."""
        universe = 0
        for mask in self.witness_masks(row):
            universe |= mask
        return universe

    def encode_deletions(self, deletions: Iterable[SourceTuple]) -> int:
        """A deletion set as a mask (unknown tuples hit nothing, so skipped)."""
        return self._index.encode(deletions)

    def encode_deletions_segmented(
        self, deletions: Iterable[SourceTuple]
    ) -> SegmentedMask:
        """A deletion set as a :class:`SegmentedMask` (same skipped-tuple
        semantics as :meth:`encode_deletions`, identical answers).

        The encoding the deletion solvers and the serving engine use on
        large universes: encoding and every downstream survival test then
        cost the deletion's touched segments, not the interned universe.
        """
        return self._index.encode_segmented(deletions)

    def encode_deletions_auto(
        self, deletions: Iterable[SourceTuple]
    ) -> "int | SegmentedMask":
        """The cheaper of the two deletion encodings for this universe.

        Both forms give identical answers everywhere a mask is accepted;
        which one runs faster depends only on how many segments the
        interned universe spans.  Small universes favour plain int masks
        (CPython's word-at-a-time big-int ops beat per-segment dict
        traffic), while large sparse universes flip — whole-universe ints
        cost the universe per AND, segmented masks cost the touched
        segments.  The deletion solvers and the serving engine encode
        through this so compact databases keep int-mask speed and wide
        ones get the segmented win.
        """
        if len(self._index) > SEGMENT_BITS * SEGMENTED_AUTO_MIN_SEGMENTS:
            return self._index.encode_segmented(deletions)
        return self._index.encode(deletions)

    def survives_mask(
        self, row: Row, deletion_mask: "int | SegmentedMask"
    ) -> bool:
        """True if ``row`` keeps a witness disjoint from ``deletion_mask``."""
        if isinstance(deletion_mask, SegmentedMask):
            row = tuple(row)
            try:
                seg_wits = self._segmented_witnesses()[row]
            except KeyError:
                raise InfeasibleError(f"row {row!r} is not in the view") from None
            return any(m.isdisjoint(deletion_mask) for m in seg_wits)
        for mask in self.witness_masks(row):
            if not (mask & deletion_mask):
                return True
        return False

    def side_effects_mask(
        self, target: Row, deletion_mask: "int | SegmentedMask"
    ) -> FrozenSet[Row]:
        """View rows other than ``target`` destroyed by ``deletion_mask``.

        Only rows whose witness universe intersects the deletion mask can be
        destroyed, so the scan runs over the inverted index's union of
        affected rows — not the whole view.
        """
        target = tuple(target)
        destroyed = self._destroyed_value(deletion_mask)
        destroyed.discard(target)
        return frozenset(destroyed)

    # ------------------------------------------------------------------
    # Batched hypothetical deletion
    # ------------------------------------------------------------------
    @staticmethod
    def _as_mask(value: "int | Sequence[int]") -> int:
        """Normalize a vector element (int mask or bit-id sequence) to int."""
        if isinstance(value, int):
            return value
        mask = 0
        for bit in value:
            mask |= 1 << bit
        return mask

    @staticmethod
    def _destroyed(
        deletion_mask: int,
        touched: Dict[int, Tuple[Row, ...]],
        witnesses: Dict[Row, MaskWitnesses],
    ) -> Set[Row]:
        """Rows whose every witness intersects ``deletion_mask``."""
        candidates: Set[Row] = set()
        for bit_index in iter_bits(deletion_mask):
            candidates.update(touched.get(bit_index, ()))
        destroyed: Set[Row] = set()
        for row in candidates:
            for mask in witnesses[row]:
                if not (mask & deletion_mask):
                    break
            else:
                destroyed.add(row)
        return destroyed

    @staticmethod
    def _destroyed_segmented(
        deletion: SegmentedMask,
        touched: Dict[int, Tuple[Row, ...]],
        seg_witnesses: "Dict[Row, Tuple[SegmentedMask, ...]]",
    ) -> Set[Row]:
        """:meth:`_destroyed`, run entirely on segmented masks.

        The inverted index is shared with the int path (bit ids are global
        either way); only the per-witness intersection test changes, from a
        whole-universe int AND to a touched-segment probe.
        """
        candidates: Set[Row] = set()
        deletion_items = tuple(deletion.items())
        for seg, bits in deletion_items:  # inline word peel, no generator
            base = seg * SEGMENT_BITS
            while bits:
                low = bits & -bits
                rows = touched.get(base + low.bit_length() - 1)
                if rows:
                    candidates.update(rows)
                bits ^= low
        destroyed: Set[Row] = set()
        if len(deletion_items) == 1:
            # The dominant shape (a compact universe is one segment; a
            # hitting-set candidate rarely straddles several): one dict
            # probe + one word AND per witness, like the int path.
            seg, word = deletion_items[0]
            for row in candidates:
                for seg_mask in seg_witnesses[row]:
                    if not (seg_mask._segs.get(seg, 0) & word):
                        break  # a disjoint witness: the row survives
                else:
                    destroyed.add(row)
            return destroyed
        for row in candidates:
            for seg_mask in seg_witnesses[row]:
                segs = seg_mask._segs
                for seg, word in deletion_items:
                    if segs.get(seg, 0) & word:
                        break  # this witness is hit; try the next one
                else:
                    break  # a disjoint witness: the row survives
            else:
                destroyed.add(row)
        return destroyed

    def _segmented_witnesses(self) -> "Dict[Row, Tuple[SegmentedMask, ...]]":
        """The witness table in segmented form, built once on demand.

        From a CSR table the segmented masks come straight from the flat
        bit runs (no whole-universe ints are ever built); from the dict
        form each int mask is split segment-wise.  Identical masks either
        way (property-tested).
        """
        if self._seg_witnesses is None:
            if self._table is not None and self._witnesses is None:
                self._seg_witnesses = self._table.segmented_by_row()
            else:
                from_int = SegmentedMask.from_int
                self._seg_witnesses = {
                    row: tuple(from_int(mask) for mask in masks)
                    for row, masks in self._witnesses.items()
                }
        return self._seg_witnesses

    def _destroyed_value(self, value: DeletionLike) -> Set[Row]:
        """Destroyed rows for one deletion, whichever form it arrived in."""
        if isinstance(value, SegmentedMask):
            return self._destroyed_segmented(
                value, self._touched_rows(), self._segmented_witnesses()
            )
        return self._destroyed(
            self._as_mask(value), self._touched_rows(), self._mask_witnesses()
        )

    def surviving_rows(
        self, deletion_mask: "int | SegmentedMask"
    ) -> FrozenSet[Row]:
        """The view after hypothetically deleting ``deletion_mask``.

        Equal to re-evaluating the query over the deleted database, but
        answered from the witness masks: rows untouched by the mask's
        inverted-index entries provably survive, the rest are tested mask
        by mask.
        """
        if not deletion_mask:
            return frozenset(self._view_rows())
        destroyed = self._destroyed_value(deletion_mask)
        if not destroyed:
            return frozenset(self._view_rows())
        return frozenset(
            row for row in self._view_rows() if row not in destroyed
        )

    def batch_destroyed(
        self,
        masks: "Sequence[int | Sequence[int] | SegmentedMask]",
        workers: "int | None" = None,
    ) -> List[FrozenSet[Row]]:
        """Destroyed-row sets for a whole vector of candidate deletion masks.

        The vector-level API of the exact solvers' candidate scans.  Each
        answer costs the same as one :meth:`side_effects_mask`-style pass;
        the batch's value is answering a candidate vector from the witness
        masks instead of re-running the query per candidate (see
        ``benchmarks/bench_plan_compile.py``'s per-candidate-vs-batched
        ablation).

        ``workers`` > 1 answers the vector sharded (:mod:`repro.parallel`):
        chunks are evaluated on worker threads/processes from an immutable
        snapshot and the merged answers are interned, so identical
        destroyed sets are materialized once.  Answers are bit-identical to
        the serial path (``workers`` ``None``/0/1); vectors shorter than
        :data:`SHARD_MIN_BATCH` stay serial regardless.
        """
        if workers is not None and workers > 1 and len(masks) >= SHARD_MIN_BATCH:
            interned: Dict[Tuple[int, ...], FrozenSet[Row]] = {}
            return [
                self._intern_destroyed(indices, interned)
                for indices in self._sharded_indices(masks, workers)
            ]
        return [frozenset(self._destroyed_value(mask)) for mask in masks]

    def batch_side_effects_mask(
        self,
        target: Row,
        masks: "Sequence[int | Sequence[int] | SegmentedMask]",
        workers: "int | None" = None,
    ) -> List[FrozenSet[Row]]:
        """:meth:`side_effects_mask` for a whole vector of masks.

        ``workers`` shards the vector exactly as in :meth:`batch_destroyed`.
        """
        target = tuple(target)
        if workers is not None and workers > 1 and len(masks) >= SHARD_MIN_BATCH:
            interned: Dict[Tuple[int, ...], FrozenSet[Row]] = {}
            out: List[FrozenSet[Row]] = []
            for indices in self._sharded_indices(masks, workers):
                effects = interned.get(indices)
                if effects is None:
                    rows = self._shard_snapshot().rows
                    effects = frozenset(
                        row
                        for row in map(rows.__getitem__, indices)
                        if row != target
                    )
                    interned[indices] = effects
                out.append(effects)
            return out
        out = []
        for mask in masks:
            destroyed = self._destroyed_value(mask)
            destroyed.discard(target)
            out.append(frozenset(destroyed))
        return out

    def batch_surviving_rows(
        self,
        masks: "Sequence[int | Sequence[int] | SegmentedMask]",
        workers: "int | None" = None,
    ) -> List[FrozenSet[Row]]:
        """:meth:`surviving_rows` for a whole vector of masks.

        The literal "what survives after deleting ``T``?" vector — the
        question the exact solvers spend their time on.  Candidates that
        destroy nothing share one baseline frozenset; on the sharded path
        (``workers`` > 1) candidates with identical destroyed sets also
        share one surviving view, so the per-answer set difference is paid
        once per distinct answer.
        """
        all_rows = frozenset(self._view_rows())
        if workers is not None and workers > 1 and len(masks) >= SHARD_MIN_BATCH:
            snapshot = self._shard_snapshot()
            rows = snapshot.rows
            interned: Dict[Tuple[int, ...], FrozenSet[Row]] = {(): all_rows}
            out: List[FrozenSet[Row]] = []
            for indices in self._sharded_indices(masks, workers):
                survivors = interned.get(indices)
                if survivors is None:
                    survivors = all_rows.difference(
                        map(rows.__getitem__, indices)
                    )
                    interned[indices] = survivors
                out.append(survivors)
            return out
        out = []
        for mask in masks:
            destroyed = self._destroyed_value(mask)
            out.append(all_rows if not destroyed else all_rows - destroyed)
        return out

    def _shard_snapshot(self) -> ShardSnapshot:
        """The immutable snapshot worker shards answer from (built once).

        A CSR-backed kernel hands its flat offset/bit arrays to the
        snapshot directly — the snapshot's own on-disk/numpy layout — so no
        int masks are encoded or re-decoded along the way.
        """
        if self._snapshot is None:
            if self._table is not None and self._witnesses is None:
                self._snapshot = ShardSnapshot.from_witness_table(
                    self._table, len(self._index)
                )
            else:
                self._snapshot = ShardSnapshot.from_witnesses(
                    self._mask_witnesses(), len(self._index)
                )
        return self._snapshot

    def _sharded_indices(
        self, masks: "Sequence[int | Sequence[int] | SegmentedMask]", workers: int
    ) -> List[Tuple[int, ...]]:
        """Destroyed row-index tuples for ``masks``, answered sharded."""
        return sharded_destroyed_indices(self._shard_snapshot(), masks, workers)

    def _intern_destroyed(
        self,
        indices: Tuple[int, ...],
        interned: "Dict[Tuple[int, ...], FrozenSet[Row]]",
    ) -> FrozenSet[Row]:
        """The destroyed frozenset for an index tuple, built once per answer."""
        answer = interned.get(indices)
        if answer is None:
            rows = self._shard_snapshot().rows
            answer = frozenset(map(rows.__getitem__, indices))
            interned[indices] = answer
        return answer

    def _touched_rows(self) -> Dict[int, Tuple[Row, ...]]:
        """source bit id → view rows whose witness universe contains it."""
        if self._touched is None:
            if self._table is not None and self._witnesses is None:
                self._touched = self._table.touched_rows()
            else:
                touched: Dict[int, List[Row]] = {}
                for row, masks in self._witnesses.items():
                    universe = 0
                    for mask in masks:
                        universe |= mask
                    for bit_index in iter_bits(universe):
                        touched.setdefault(bit_index, []).append(row)
                self._touched = {
                    bit: tuple(rows) for bit, rows in touched.items()
                }
        return self._touched

    # ------------------------------------------------------------------
    # Incremental maintenance (the write path)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        new_db: Database,
        deleted_sources: Iterable[SourceTuple] = (),
        inserted_by_name: "Dict[str, Iterable[Row]] | None" = None,
        query: "Query | None" = None,
        plan: "CompiledPlan | None" = None,
        optimizer_level: "int | None" = None,
        store: "object | None" = None,
    ) -> "BitsetProvenance":
        """A new kernel reflecting a delta, without a from-scratch rebuild.

        ``new_db`` is the database *after* the delta; ``deleted_sources``
        and ``inserted_by_name`` are the delta's **net** effect (rows
        actually removed / actually added — the
        :class:`~repro.versioning.Delta` normalization).  The returned
        kernel shares this kernel's :class:`SourceIndex` (interning is
        append-only, so patched and original kernels coexist) and decodes
        identically to a full re-annotation over ``new_db``; this kernel
        is never mutated.

        *Deletions* patch the witness table directly: a witness dies iff
        its monomial mentions a deleted id, a row dies iff all its
        witnesses do (:meth:`WitnessTable.drop_bits` on the CSR form; a
        touched-rows-guided filter on the dict form).  *Inserts* are
        evaluated as delta branches: for each inserted relation the plan
        is re-run over a database where that relation holds only its delta
        rows — sound when the query is linear in each inserted relation
        (:func:`_join_nonlinear_names`; a name may appear in several Union
        branches, only Join-on-both-sides breaks linearity).  Self-joins
        over an inserted relation, or an
        :class:`~repro.errors.ExponentialGuardError` during a branch, fall
        back to one full re-annotation over ``new_db`` (still on the
        shared index and plan).  A CSR-backed kernel stays CSR: branch
        results splice into the arrays (:meth:`WitnessTable.merge_rows`)
        without materializing the dict view.

        ``store`` (a ColumnStore matching ``new_db`` — the engine hands
        the delta-patched one) routes any full re-annotation through the
        vectorized columnar kernels instead of the tuple executor.
        """
        inserted: Dict[str, FrozenSet[Row]] = {
            name: frozenset(tuple(row) for row in rows)
            for name, rows in (inserted_by_name or {}).items()
            if rows
        }
        deleted_ids = self._index.encode_ids(deleted_sources)
        # Derived serving state (segmented witnesses, inverted index) is
        # patched across the delta too — when warm, a probe after the
        # write costs the same as a probe before it.
        new_seg, new_touched = self._derived_after_deletions(deleted_ids)

        # Phase 1: patch deletions out of the witness table.
        seg_patch: "Dict[Row, Tuple[SegmentedMask, ...]] | None" = None
        if self._table is not None and self._witnesses is None:
            patched: "Dict[Row, MaskWitnesses] | WitnessTable" = (
                self._table.drop_bits(deleted_ids)
                if deleted_ids
                else self._table
            )
        else:
            patched, seg_patch = self._drop_from_dicts(deleted_ids)

        if inserted and query is None:
            raise ValueError("apply_delta needs the query to patch inserts")
        if inserted:
            # Only relations the query actually reads contribute witnesses.
            occurrences = _relation_occurrences(query)
            inserted = {
                name: rows
                for name, rows in inserted.items()
                if occurrences.get(name, 0) > 0
            }
        if not inserted:
            kernel = BitsetProvenance(
                self._schema, patched, self._index, self._view_name
            )
            kernel._seg_witnesses = (
                new_seg if new_seg is not None else seg_patch
            )
            kernel._touched = new_touched
            _registry().counter("provenance.delta.patched").inc()
            return kernel

        nonlinear = _join_nonlinear_names(query)
        if any(name in nonlinear for name in inserted):
            # The delta decomposition below is only sound when the query
            # is linear in each inserted relation (a self-join mixes old
            # and delta rows inside one witness).
            return self._reannotate(query, new_db, plan, optimizer_level, store)

        if plan is None:
            plan = cached_plan(query, new_db, optimizer_level)
        use_store = store is not None and store.matches(new_db)
        names = sorted(inserted)
        try:
            branch_tables: List[Dict[Row, MaskWitnesses]] = []
            for i, name in enumerate(names):
                branch_db = new_db
                removed_by: Dict[str, Set[Row]] = {}
                for j, other in enumerate(names):
                    if j < i:
                        # Earlier deltas already contributed their cross
                        # terms; this branch sees those relations pre-insert.
                        mid = new_db[other].rows - inserted[other]
                        branch_db = branch_db.with_relation(
                            Relation._trusted(
                                other, new_db[other].schema, frozenset(mid)
                            )
                        )
                        removed_by[other] = set(inserted[other])
                    elif j == i:
                        branch_db = branch_db.with_relation(
                            Relation._trusted(
                                name, new_db[name].schema, inserted[name]
                            )
                        )
                        removed_by[name] = set(
                            new_db[name].rows - inserted[name]
                        )
                if use_store:
                    # A throwaway branch store: the delta relation relowers
                    # (it holds a handful of rows), everything else shares
                    # the patched store's columns and index — so the branch
                    # runs on the vectorized columnar kernels.
                    branch_store = store.apply_delta(branch_db, removed_by, {})
                    branch_tables.append(
                        plan.annotated_table_columnar(
                            branch_store, self._index
                        ).to_masks()
                    )
                else:
                    branch_tables.append(
                        plan.annotated_rows(branch_db, self._index)
                    )
        except ExponentialGuardError:
            return self._reannotate(query, new_db, plan, optimizer_level, store)

        # Merge the branch contributions: only rows the delta actually
        # touched are decoded/re-minimized.
        is_csr = isinstance(patched, WitnessTable)
        updates: Dict[Row, MaskWitnesses] = {}
        for table in branch_tables:
            for row, masks in table.items():
                prev = updates.get(row)
                if prev is None:
                    prev = (
                        patched.masks_of(row) if is_csr else patched.get(row)
                    )
                updates[row] = (
                    masks
                    if prev is None
                    else minimize_masks(set(prev) | set(masks))
                )
        if is_csr:
            # Stay in arrays: splice the merged masks back in, the
            # untouched bulk is one vectorized copy.
            table_out: "Dict[Row, MaskWitnesses] | WitnessTable" = (
                patched.merge_rows(updates)
            )
        else:
            table_out = dict(patched)
            table_out.update(updates)
        kernel = BitsetProvenance(
            self._schema, table_out, self._index, self._view_name
        )
        if new_seg is not None and new_touched is not None:
            kernel._seg_witnesses, kernel._touched = self._derived_after_updates(
                new_seg, new_touched, updates
            )
        _registry().counter("provenance.delta.patched").inc()
        return kernel

    def _drop_from_dicts(
        self, deleted_ids: Sequence[int]
    ) -> "Tuple[Dict[Row, MaskWitnesses], Dict[Row, Tuple[SegmentedMask, ...]] | None]":
        """Deletion-patch the dict-backed witness table (and its segmented
        twin in lockstep, when already materialized)."""
        witnesses = self._mask_witnesses()
        seg = self._seg_witnesses
        if not deleted_ids:
            return witnesses, seg
        dmask = 0
        for bit in deleted_ids:
            dmask |= 1 << bit
        touched = self._touched_rows()
        affected: Set[Row] = set()
        for bit in deleted_ids:
            rows = touched.get(bit)
            if rows:
                affected.update(rows)
        if not affected:
            return witnesses, seg
        patched = dict(witnesses)
        seg_patch = dict(seg) if seg is not None else None
        for row in affected:
            masks = patched[row]
            keep = [not (mask & dmask) for mask in masks]
            if all(keep):
                continue
            if not any(keep):
                del patched[row]
                if seg_patch is not None:
                    del seg_patch[row]
                continue
            # Filtering a canonically-sorted antichain preserves canonical
            # order, so the kept tuple equals a fresh minimization.
            patched[row] = tuple(
                mask for mask, k in zip(masks, keep) if k
            )
            if seg_patch is not None:
                seg_patch[row] = tuple(
                    sm for sm, k in zip(seg_patch[row], keep) if k
                )
        return patched, seg_patch

    def _derived_after_deletions(
        self, deleted_ids: Sequence[int]
    ) -> "Tuple[dict | None, dict | None]":
        """This kernel's warm derived caches, patched past the deletions.

        Returns ``(segmented witnesses, touched-rows inverted index)`` as
        fresh dicts the caller may keep mutating, or ``(None, None)`` when
        either cache was never materialized — patching cold state would
        just move the cold build into the write.
        """
        seg = self._seg_witnesses
        touched = self._touched
        if seg is None or touched is None:
            return None, None
        new_seg = dict(seg)
        new_touched = dict(touched)
        if not deleted_ids:
            return new_seg, new_touched
        dsegs: Dict[int, int] = {}
        affected: Set[Row] = set()
        for b in deleted_ids:
            b = int(b)
            dsegs[b // SEGMENT_BITS] = dsegs.get(b // SEGMENT_BITS, 0) | (
                1 << (b % SEGMENT_BITS)
            )
            rows = touched.get(b)
            if rows:
                affected.update(rows)
        ditems = tuple(dsegs.items())
        for row in affected:
            masks = new_seg.get(row)
            if masks is None:
                continue
            kept = tuple(
                sm
                for sm in masks
                if not any(sm._segs.get(s, 0) & w for s, w in ditems)
            )
            if len(kept) == len(masks):
                continue
            old_u = _union_segments(masks)
            if kept:
                new_seg[row] = kept
                new_u = _union_segments(kept)
            else:
                del new_seg[row]
                new_u = {}
            # Bits the row's universe lost leave the inverted index — a
            # surviving witness may still hold them, hence the diff.
            for s, w in old_u.items():
                lost = w & ~new_u.get(s, 0)
                base = s * SEGMENT_BITS
                for bit in iter_bits(lost):
                    _touched_discard(new_touched, base + bit, row)
        return new_seg, new_touched

    @staticmethod
    def _derived_after_updates(
        new_seg: dict, new_touched: dict, updates: "Dict[Row, MaskWitnesses]"
    ) -> "Tuple[dict, dict]":
        """Fold the insert merge's per-row mask updates into the caches."""
        from_int = SegmentedMask.from_int
        for row, masks in updates.items():
            old = new_seg.get(row)
            old_u = _union_segments(old) if old else {}
            seg_masks = tuple(from_int(mask) for mask in masks)
            new_seg[row] = seg_masks
            new_u = _union_segments(seg_masks)
            for s, w in new_u.items():
                gained = w & ~old_u.get(s, 0)
                base = s * SEGMENT_BITS
                for bit in iter_bits(gained):
                    _touched_add(new_touched, base + bit, row)
            for s, w in old_u.items():
                lost = w & ~new_u.get(s, 0)
                base = s * SEGMENT_BITS
                for bit in iter_bits(lost):
                    _touched_discard(new_touched, base + bit, row)
        return new_seg, new_touched

    def _reannotate(
        self,
        query: Query,
        new_db: Database,
        plan: "CompiledPlan | None",
        optimizer_level: "int | None",
        store: "object | None" = None,
    ) -> "BitsetProvenance":
        """Full re-annotation over ``new_db`` on the shared index.

        When the caller holds a ColumnStore matching ``new_db`` the
        annotation runs through the vectorized columnar kernels (foreign
        row ids translate into this kernel's index), landing back in the
        CSR form — the fallback is then no slower than a cold build.
        """
        _registry().counter("provenance.delta.reannotated").inc()
        return bitset_why_provenance(
            query,
            new_db,
            self._view_name,
            index=self._index,
            plan=plan,
            optimizer_level=optimizer_level,
            store=store,
        )

    # ------------------------------------------------------------------
    # Decoding (the API boundary)
    # ------------------------------------------------------------------
    def decode_witnesses(self, row: Row) -> FrozenSet[FrozenSet[SourceTuple]]:
        """The minimal witnesses of ``row`` in the public frozenset form."""
        decode = self._index.decode_mask
        return frozenset(decode(mask) for mask in self.witness_masks(row))

    def decode_all(self) -> Dict[Row, FrozenSet[FrozenSet[SourceTuple]]]:
        """The full row → witness-set mapping, decoded."""
        decode = self._index.decode_mask
        return {
            row: frozenset(decode(mask) for mask in masks)
            for row, masks in self._mask_witnesses().items()
        }


def bitset_why_provenance(
    query: Query,
    db: Database,
    view_name: str = DEFAULT_VIEW_NAME,
    index: "SourceIndex | None" = None,
    plan: "CompiledPlan | None" = None,
    optimizer_level: "int | None" = None,
    store: "object | None" = None,
) -> BitsetProvenance:
    """Annotated evaluation of ``query`` over ``db``, natively on bitmasks.

    ``index`` lets callers share one interning table across several
    provenance computations over the same database; by default a fresh one
    is grown lazily, interning only the relations the query touches.

    The evaluation executes the compiled physical plan's witness-annotated
    semantics (:meth:`~repro.algebra.plan.CompiledPlan.annotated_rows`);
    ``plan`` lets callers supply a plan they already hold, otherwise the
    shared plan memo provides one at ``optimizer_level`` (``None`` = the
    library default).  Witness masks are invariant under the optimizer's
    rewrites — given the same ``index``, an optimized and an unoptimized
    plan produce identical masks (pinned by the soundness property tests).

    ``store`` (a :class:`repro.columnar.store.ColumnStore` built over this
    exact ``db`` object) routes the annotated evaluation through the
    vectorized columnar kernels
    (:meth:`~repro.algebra.plan.CompiledPlan.annotated_rows_columnar`).
    A store over a different database object is ignored.  When no ``index``
    is supplied the store's own interning table is adopted, so its row-id
    vectors translate to witness bits without re-interning.
    """
    from time import perf_counter

    from repro.provenance.cache import provenance_cache

    if store is not None and not store.matches(db):
        store = None
    if index is None:
        index = store.index if store is not None else SourceIndex()
    if plan is None:
        plan = cached_plan(query, db, optimizer_level)
    started = perf_counter()
    if store is not None:
        table = plan.annotated_table_columnar(store, index)
        path = "columnar-csr"
        nwits = table.witness_count
    else:
        table = plan.annotated_rows(db, index)
        path = "tuple"
        nwits = sum(len(masks) for masks in table.values())
    seconds = perf_counter() - started
    prov = BitsetProvenance(plan.schema, table, index, view_name)
    prov.build_stats = {
        "seconds": seconds,
        "rows": len(table),
        "witnesses": nwits,
        "path": path,
    }
    provenance_cache.note_witness_build(seconds, len(table), nwits)
    _registry().histogram("provenance.witness_build_seconds").observe(seconds)
    return prov
