"""The bitset provenance kernel: minimal witnesses as integer bitmasks.

This is the engine under :func:`repro.provenance.why.why_provenance`.  The
semantics are exactly those of the witness DNF described there; only the
representation changes:

* a *monomial* (a set of source tuples) is one Python ``int`` whose set bits
  index source tuples through a :class:`~repro.provenance.interning.SourceIndex`;
* a tuple's *witness set* is a tuple of masks, kept inclusion-minimal;
* absorption ``a ⊆ b`` is ``a & b == a`` — one machine-word-per-limb AND
  instead of a hashed frozenset comparison;
* the join product of two monomials is ``lm | rm`` on ints;
* survival of a row under a deletion mask ``d`` is ``any(m & d == 0)``;
* side effects use an inverted index from source bit to the view rows whose
  witness universe contains it, so candidate evaluation only touches rows
  the deletion can actually reach instead of scanning the whole view.

Decoding back to the public ``frozenset``-of-``frozenset`` representation
happens only at the API boundary (:meth:`BitsetProvenance.decode_witnesses`),
so every intermediate step of the annotated evaluation runs on ints.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import EvaluationError, InfeasibleError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema
from repro.provenance.interning import SourceIndex, iter_bits
from repro.provenance.locations import SourceTuple

__all__ = [
    "Mask",
    "MaskWitnesses",
    "minimize_masks",
    "BitsetProvenance",
    "bitset_why_provenance",
]

#: A monomial as an integer bitmask over interned source-tuple ids.
Mask = int

#: A tuple's witness basis: its minimal monomials, as masks.
MaskWitnesses = Tuple[int, ...]


def minimize_masks(masks: "Set[int] | Iterable[int]") -> MaskWitnesses:
    """Remove masks that strictly contain another (absorption), deduplicated.

    ``a`` absorbs ``b`` when ``a & b == a`` (every bit of ``a`` is in ``b``).
    Scanning in popcount order means a kept mask can never be absorbed by a
    later one — a strict subset always has a strictly smaller popcount — so
    one pass suffices.  For large families the kept masks are indexed by
    their lowest set bit: any absorber of ``m`` has its lowest bit inside
    ``m``, so only the buckets of ``m``'s bits are probed instead of every
    kept mask.
    """
    if not isinstance(masks, (set, frozenset)):
        masks = set(masks)
    if len(masks) <= 1:
        return tuple(masks)
    ordered = sorted(masks, key=int.bit_count)
    kept: List[int] = []
    if len(ordered) <= 16:
        for mask in ordered:
            for existing in kept:
                if existing & mask == existing:
                    break
            else:
                kept.append(mask)
        return tuple(kept)

    by_low_bit: Dict[int, List[int]] = {}
    for mask in ordered:
        absorbed = False
        remaining = mask
        while remaining:
            low = remaining & -remaining
            bucket = by_low_bit.get(low)
            if bucket is not None:
                for existing in bucket:
                    if existing & mask == existing:
                        absorbed = True
                        break
                if absorbed:
                    break
            remaining ^= low
        if not absorbed:
            kept.append(mask)
            by_low_bit.setdefault(mask & -mask, []).append(mask)
    return tuple(kept)


class BitsetProvenance:
    """Why-provenance of a view with witnesses held as bitmasks.

    Produced by :func:`bitset_why_provenance`.  This is the object the
    deletion solvers actually compute with; the ``frozenset`` view of the
    same data is available through :meth:`decode_witnesses` and the
    :class:`~repro.provenance.why.WhyProvenance` wrapper.
    """

    __slots__ = ("_schema", "_view_name", "_index", "_witnesses", "_touched")

    def __init__(
        self,
        schema: Schema,
        witnesses: Dict[Row, MaskWitnesses],
        index: SourceIndex,
        view_name: str = DEFAULT_VIEW_NAME,
    ):
        self._schema = schema
        self._witnesses = witnesses
        self._index = index
        self._view_name = view_name
        #: Lazy inverted index: source bit id -> rows whose universe has it.
        self._touched: "Dict[int, Tuple[Row, ...]] | None" = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Schema of the view."""
        return self._schema

    @property
    def view_name(self) -> str:
        """Name the view was evaluated under."""
        return self._view_name

    @property
    def index(self) -> SourceIndex:
        """The source-tuple interning table masks are expressed over."""
        return self._index

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All view rows, deterministically ordered."""
        return tuple(sorted(self._witnesses, key=repr))

    def relation(self) -> Relation:
        """The view as a plain relation (provenance dropped)."""
        return Relation(self._view_name, self._schema, self._witnesses.keys())

    def __len__(self) -> int:
        return len(self._witnesses)

    def __contains__(self, row: object) -> bool:
        return row in self._witnesses

    # ------------------------------------------------------------------
    # Mask-level queries
    # ------------------------------------------------------------------
    def witness_masks(self, row: Row) -> MaskWitnesses:
        """The minimal witnesses of ``row`` as masks.

        Raises :class:`InfeasibleError` if the row is not in the view.
        """
        row = tuple(row)
        try:
            return self._witnesses[row]
        except KeyError:
            raise InfeasibleError(f"row {row!r} is not in the view") from None

    def universe_mask(self, row: Row) -> int:
        """OR of all witness masks of ``row``."""
        universe = 0
        for mask in self.witness_masks(row):
            universe |= mask
        return universe

    def encode_deletions(self, deletions: Iterable[SourceTuple]) -> int:
        """A deletion set as a mask (unknown tuples hit nothing, so skipped)."""
        return self._index.encode(deletions)

    def survives_mask(self, row: Row, deletion_mask: int) -> bool:
        """True if ``row`` keeps a witness disjoint from ``deletion_mask``."""
        for mask in self.witness_masks(row):
            if not (mask & deletion_mask):
                return True
        return False

    def side_effects_mask(self, target: Row, deletion_mask: int) -> FrozenSet[Row]:
        """View rows other than ``target`` destroyed by ``deletion_mask``.

        Only rows whose witness universe intersects the deletion mask can be
        destroyed, so the scan runs over the inverted index's union of
        affected rows — not the whole view.
        """
        target = tuple(target)
        touched = self._touched_rows()
        witnesses = self._witnesses
        destroyed: Set[Row] = set()
        candidates: Set[Row] = set()
        for bit_index in iter_bits(deletion_mask):
            candidates.update(touched.get(bit_index, ()))
        for row in candidates:
            if row == target:
                continue
            for mask in witnesses[row]:
                if not (mask & deletion_mask):
                    break
            else:
                destroyed.add(row)
        return frozenset(destroyed)

    def _touched_rows(self) -> Dict[int, Tuple[Row, ...]]:
        """source bit id → view rows whose witness universe contains it."""
        if self._touched is None:
            touched: Dict[int, List[Row]] = {}
            for row, masks in self._witnesses.items():
                universe = 0
                for mask in masks:
                    universe |= mask
                for bit_index in iter_bits(universe):
                    touched.setdefault(bit_index, []).append(row)
            self._touched = {bit: tuple(rows) for bit, rows in touched.items()}
        return self._touched

    # ------------------------------------------------------------------
    # Decoding (the API boundary)
    # ------------------------------------------------------------------
    def decode_witnesses(self, row: Row) -> FrozenSet[FrozenSet[SourceTuple]]:
        """The minimal witnesses of ``row`` in the public frozenset form."""
        decode = self._index.decode_mask
        return frozenset(decode(mask) for mask in self.witness_masks(row))

    def decode_all(self) -> Dict[Row, FrozenSet[FrozenSet[SourceTuple]]]:
        """The full row → witness-set mapping, decoded."""
        decode = self._index.decode_mask
        return {
            row: frozenset(decode(mask) for mask in masks)
            for row, masks in self._witnesses.items()
        }


def bitset_why_provenance(
    query: Query,
    db: Database,
    view_name: str = DEFAULT_VIEW_NAME,
    index: "SourceIndex | None" = None,
) -> BitsetProvenance:
    """Annotated evaluation of ``query`` over ``db``, natively on bitmasks.

    ``index`` lets callers share one interning table across several
    provenance computations over the same database; by default a fresh one
    is grown lazily, interning only the relations the query touches.
    """
    if index is None:
        index = SourceIndex()
    schema, table = _eval(query, db, index)
    return BitsetProvenance(schema, table, index, view_name)


def _getter(positions: "List[int] | Tuple[int, ...]"):
    """A C-speed row projector that always returns a tuple."""
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        only = positions[0]
        return lambda row: (row[only],)
    return itemgetter(*positions)


def _eval(
    query: Query, db: Database, index: SourceIndex
) -> Tuple[Schema, Dict[Row, MaskWitnesses]]:
    """Recursive annotated evaluation: (schema, row → minimal masks)."""
    if isinstance(query, RelationRef):
        relation = db[query.name]
        name = query.name
        intern = index.intern
        table = {row: (1 << intern((name, row)),) for row in relation.rows}
        return relation.schema, table

    if isinstance(query, Select):
        schema, table = _eval(query.child, db, index)
        query.predicate.validate(schema)
        evaluate = query.predicate.evaluate
        kept = {
            row: wits for row, wits in table.items() if evaluate(schema, row)
        }
        return schema, kept

    if isinstance(query, Project):
        schema, table = _eval(query.child, db, index)
        out_schema = schema.project(query.attributes)
        image_of = _getter(schema.positions(query.attributes))
        merged: Dict[Row, Set[int]] = {}
        merged_get = merged.get
        for row, wits in table.items():
            image = image_of(row)
            masks = merged_get(image)
            if masks is None:
                merged[image] = set(wits)
            else:
                masks.update(wits)
        return out_schema, {
            row: minimize_masks(masks) for row, masks in merged.items()
        }

    if isinstance(query, Join):
        left_schema, left_table = _eval(query.left, db, index)
        right_schema, right_table = _eval(query.right, db, index)
        out_schema = left_schema.join(right_schema)
        shared = left_schema.common(right_schema)
        left_key_of = _getter(left_schema.positions(shared))
        right_key_of = _getter(right_schema.positions(shared))
        extra_of = _getter(
            [
                i
                for i, attr in enumerate(right_schema.attributes)
                if attr not in left_schema
            ]
        )
        buckets: Dict[Tuple[object, ...], List[Tuple[Row, MaskWitnesses]]] = {}
        for row, wits in right_table.items():
            buckets.setdefault(right_key_of(row), []).append(
                (extra_of(row), wits)
            )
        out: Dict[Row, Set[int]] = {}
        out_get = out.get
        for lrow, lwits in left_table.items():
            matches = buckets.get(left_key_of(lrow))
            if not matches:
                continue
            for extra, rwits in matches:
                joined = lrow + extra
                if len(lwits) == 1 and len(rwits) == 1:
                    products = {lwits[0] | rwits[0]}
                else:
                    products = {lm | rm for lm in lwits for rm in rwits}
                masks = out_get(joined)
                if masks is None:
                    out[joined] = products
                else:
                    masks.update(products)
        return out_schema, {
            row: minimize_masks(masks) for row, masks in out.items()
        }

    if isinstance(query, Union):
        left_schema, left_table = _eval(query.left, db, index)
        right_schema, right_table = _eval(query.right, db, index)
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError(
                f"union of incompatible schemas {left_schema.attributes} "
                f"and {right_schema.attributes}"
            )
        image_of = _getter(right_schema.positions(left_schema.attributes))
        merged = {row: set(wits) for row, wits in left_table.items()}
        merged_get = merged.get
        for row, wits in right_table.items():
            image = image_of(row)
            masks = merged_get(image)
            if masks is None:
                merged[image] = set(wits)
            else:
                masks.update(wits)
        return left_schema, {
            row: minimize_masks(masks) for row, masks in merged.items()
        }

    if isinstance(query, Rename):
        schema, table = _eval(query.child, db, index)
        return schema.rename(query.mapping_dict), table

    raise EvaluationError(f"unknown query node {query!r}")
