"""Where-provenance: annotation propagation from source to view.

Section 3 of the paper defines five *forward propagation rules*, one per
monotone operator, describing how an annotation placed on a source location
``(R, t', A)`` is carried into the view:

* **Selection** ``σ_C(R)``: propagates to ``(σ_C(R), t, A)`` iff ``t = t'``.
* **Projection** ``Π_B(R)``: propagates to ``(Π_B(R), t, A)`` iff ``A ∈ B``
  and ``t'.B = t``.
* **Join** ``R1 ⋈ R2``: an annotation on ``(R1, t1, A)`` (resp. ``R2``)
  propagates to ``(R1 ⋈ R2, t, A)`` iff ``t.R1 = t1`` (resp. ``t.R2 = t2``).
* **Union** ``R1 ∪ R2``: propagates iff ``t = t1`` (resp. ``t = t2``).
* **Renaming** ``δ_θ(R)``: ``(R, t, A)`` propagates to ``(δ_θ(R), t, θ(A))``.

The rules use *equality of similarly named fields* — there is no flow across
differently named attributes, even under an explicit equality selection
``σ_{A=A'}``; the test suite pins this consequence down.

This module computes the full relation ``R(Q, S)`` between source locations
and view locations:

* :func:`where_provenance` — for each view location, the set of source
  locations whose annotation reaches it (the *backward* image);
* :meth:`WhereProvenance.forward` — for a source location, the set of view
  locations it propagates to (the *forward* image, i.e. what happens if you
  annotate that source field);
* :meth:`WhereProvenance.forward_closure` — forward images for all source
  locations at once.

Because the rules compose tuple-by-tuple, the backward image is computed by
one annotated evaluation pass, mirroring :mod:`repro.provenance.why`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import EvaluationError, InfeasibleError
from repro.algebra.ast import (
    Join,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema
from repro.provenance.locations import Location

__all__ = ["WhereProvenance", "where_provenance", "annotate"]

#: A view field: (row, attribute).  The view's name is carried separately.
ViewField = Tuple[Row, str]


class WhereProvenance:
    """The relation ``R(Q, S)`` between source locations and view locations.

    Stores the backward image (view field → source locations) and derives
    forward images on demand.
    """

    __slots__ = ("_schema", "_backward", "_view_name", "_forward_cache")

    def __init__(
        self,
        schema: Schema,
        backward: Dict[ViewField, FrozenSet[Location]],
        view_name: str = DEFAULT_VIEW_NAME,
    ):
        self._schema = schema
        self._backward = backward
        self._view_name = view_name
        self._forward_cache: "Dict[Location, FrozenSet[Location]] | None" = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Schema of the view."""
        return self._schema

    @property
    def view_name(self) -> str:
        """Name used for view locations."""
        return self._view_name

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All view rows, deterministically ordered."""
        return tuple(sorted({row for row, _ in self._backward}, key=repr))

    def relation(self) -> Relation:
        """The view as a plain relation."""
        return Relation(
            self._view_name, self._schema, {row for row, _ in self._backward}
        )

    def view_locations(self) -> Tuple[Location, ...]:
        """Every location of the view, deterministically ordered."""
        out = [
            Location(self._view_name, row, attr) for row, attr in self._backward
        ]
        return tuple(sorted(out, key=lambda loc: (repr(loc.row), loc.attribute)))

    # ------------------------------------------------------------------
    # Backward image
    # ------------------------------------------------------------------
    def backward(self, row: Row, attribute: str) -> FrozenSet[Location]:
        """Source locations that propagate to view field ``(row, attribute)``.

        Raises :class:`InfeasibleError` when the field is not in the view.
        """
        key = (tuple(row), attribute)
        if key not in self._backward:
            raise InfeasibleError(
                f"({row!r}, {attribute!r}) is not a field of the view"
            )
        return self._backward[key]

    def as_dict(self) -> Dict[ViewField, FrozenSet[Location]]:
        """A copy of the backward map."""
        return dict(self._backward)

    # ------------------------------------------------------------------
    # Forward image
    # ------------------------------------------------------------------
    def forward(self, source: Location) -> FrozenSet[Location]:
        """View locations an annotation on ``source`` propagates to.

        The inverse image of the backward map: all view fields whose
        where-provenance contains ``source``.
        """
        return self.forward_closure().get(source, frozenset())

    def forward_closure(self) -> Dict[Location, FrozenSet[Location]]:
        """Forward images for every source location that reaches the view.

        Source locations with an empty forward image do not appear as keys.
        """
        if self._forward_cache is None:
            forward: Dict[Location, Set[Location]] = {}
            for (row, attr), sources in self._backward.items():
                view_loc = Location(self._view_name, row, attr)
                for src in sources:
                    forward.setdefault(src, set()).add(view_loc)
            self._forward_cache = {
                src: frozenset(locs) for src, locs in forward.items()
            }
        return dict(self._forward_cache)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WhereProvenance):
            return NotImplemented
        return self._schema == other._schema and self._backward == other._backward


def where_provenance(
    query: Query, db: Database, view_name: str = DEFAULT_VIEW_NAME
) -> WhereProvenance:
    """Compute the full annotation-propagation relation of ``query`` on ``db``."""
    schema, table = _eval(query, db)
    return WhereProvenance(schema, table, view_name)


def annotate(
    query: Query, db: Database, source: Location, view_name: str = DEFAULT_VIEW_NAME
) -> FrozenSet[Location]:
    """Forward-propagate an annotation on ``source`` through ``query``.

    Convenience wrapper over :meth:`WhereProvenance.forward`.
    """
    return where_provenance(query, db, view_name).forward(source)


def _eval(
    query: Query, db: Database
) -> Tuple[Schema, Dict[ViewField, FrozenSet[Location]]]:
    """Annotated evaluation: (schema, (row, attr) → source locations)."""
    if isinstance(query, RelationRef):
        relation = db[query.name]
        table: Dict[ViewField, FrozenSet[Location]] = {}
        for row in relation.rows:
            for attr in relation.schema.attributes:
                table[(row, attr)] = frozenset({Location(query.name, row, attr)})
        return relation.schema, table

    if isinstance(query, Select):
        schema, table = _eval(query.child, db)
        query.predicate.validate(schema)
        surviving_rows = {
            row for row, _ in table if query.predicate.evaluate(schema, row)
        }
        kept = {
            (row, attr): sources
            for (row, attr), sources in table.items()
            if row in surviving_rows
        }
        return schema, kept

    if isinstance(query, Project):
        schema, table = _eval(query.child, db)
        out_schema = schema.project(query.attributes)
        positions = schema.positions(query.attributes)
        out: Dict[ViewField, Set[Location]] = {}
        for (row, attr), sources in table.items():
            if attr not in out_schema:
                continue
            image = tuple(row[i] for i in positions)
            out.setdefault((image, attr), set()).update(sources)
        return out_schema, {key: frozenset(v) for key, v in out.items()}

    if isinstance(query, Join):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        out_schema = left_schema.join(right_schema)
        shared = left_schema.common(right_schema)
        left_rows = {row for row, _ in left_table}
        right_rows = {row for row, _ in right_table}
        left_key = left_schema.positions(shared)
        right_key = right_schema.positions(shared)
        right_extra = [
            i
            for i, attr in enumerate(right_schema.attributes)
            if attr not in left_schema
        ]
        buckets: Dict[Tuple[object, ...], List[Row]] = {}
        for row in right_rows:
            buckets.setdefault(tuple(row[i] for i in right_key), []).append(row)
        out = {}
        for lrow in left_rows:
            key = tuple(lrow[i] for i in left_key)
            for rrow in buckets.get(key, ()):
                joined = lrow + tuple(rrow[i] for i in right_extra)
                # t.R1 = lrow, t.R2 = rrow; annotations flow from both sides,
                # and for shared attributes from both components at once.
                for attr in out_schema.attributes:
                    sources: Set[Location] = set()
                    if attr in left_schema:
                        sources |= left_table[(lrow, attr)]
                    if attr in right_schema:
                        sources |= right_table[(rrow, attr)]
                    key2 = (joined, attr)
                    if key2 in out:
                        out[key2] = frozenset(out[key2] | sources)
                    else:
                        out[key2] = frozenset(sources)
        return out_schema, out

    if isinstance(query, Union):
        left_schema, left_table = _eval(query.left, db)
        right_schema, right_table = _eval(query.right, db)
        if not left_schema.is_union_compatible(right_schema):
            raise EvaluationError(
                f"union of incompatible schemas {left_schema.attributes} "
                f"and {right_schema.attributes}"
            )
        reorder = right_schema.positions(left_schema.attributes)
        merged: Dict[ViewField, Set[Location]] = {
            key: set(sources) for key, sources in left_table.items()
        }
        for (row, attr), sources in right_table.items():
            image = tuple(row[i] for i in reorder)
            merged.setdefault((image, attr), set()).update(sources)
        return left_schema, {key: frozenset(v) for key, v in merged.items()}

    if isinstance(query, Rename):
        schema, table = _eval(query.child, db)
        mapping = query.mapping_dict
        out_schema = schema.rename(mapping)
        renamed = {
            (row, mapping.get(attr, attr)): sources
            for (row, attr), sources in table.items()
        }
        return out_schema, renamed

    raise EvaluationError(f"unknown query node {query!r}")
