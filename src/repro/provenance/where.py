"""Where-provenance: annotation propagation from source to view.

Section 3 of the paper defines five *forward propagation rules*, one per
monotone operator, describing how an annotation placed on a source location
``(R, t', A)`` is carried into the view:

* **Selection** ``σ_C(R)``: propagates to ``(σ_C(R), t, A)`` iff ``t = t'``.
* **Projection** ``Π_B(R)``: propagates to ``(Π_B(R), t, A)`` iff ``A ∈ B``
  and ``t'.B = t``.
* **Join** ``R1 ⋈ R2``: an annotation on ``(R1, t1, A)`` (resp. ``R2``)
  propagates to ``(R1 ⋈ R2, t, A)`` iff ``t.R1 = t1`` (resp. ``t.R2 = t2``).
* **Union** ``R1 ∪ R2``: propagates iff ``t = t1`` (resp. ``t = t2``).
* **Renaming** ``δ_θ(R)``: ``(R, t, A)`` propagates to ``(δ_θ(R), t, θ(A))``.

The rules use *equality of similarly named fields* — there is no flow across
differently named attributes, even under an explicit equality selection
``σ_{A=A'}``; the test suite pins this consequence down.

This module computes the full relation ``R(Q, S)`` between source locations
and view locations:

* :func:`where_provenance` — for each view location, the set of source
  locations whose annotation reaches it (the *backward* image);
* :meth:`WhereProvenance.forward` — for a source location, the set of view
  locations it propagates to (the *forward* image, i.e. what happens if you
  annotate that source field);
* :meth:`WhereProvenance.forward_closure` — forward images for all source
  locations at once.

Because the rules compose tuple-by-tuple, the backward image is computed by
one annotated evaluation pass, mirroring :mod:`repro.provenance.why`.  That
pass runs on the **compiled plan layer**: :func:`where_provenance` compiles
the query once through the shared plan memo and executes the plan's
where-annotated semantics
(:meth:`~repro.algebra.plan.CompiledPlan.where_rows`), where positions and
attribute lineage through joins are resolved at compile time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.errors import InfeasibleError
from repro.algebra.ast import Query
from repro.algebra.evaluate import DEFAULT_VIEW_NAME
from repro.algebra.relation import Database, Relation, Row
from repro.algebra.schema import Schema
from repro.provenance.cache import cached_plan
from repro.provenance.locations import Location

__all__ = ["WhereProvenance", "where_provenance", "annotate"]

#: A view field: (row, attribute).  The view's name is carried separately.
ViewField = Tuple[Row, str]


class WhereProvenance:
    """The relation ``R(Q, S)`` between source locations and view locations.

    Stores the backward image (view field → source locations) and derives
    forward images on demand.
    """

    __slots__ = ("_schema", "_backward", "_view_name", "_forward_cache")

    def __init__(
        self,
        schema: Schema,
        backward: Dict[ViewField, FrozenSet[Location]],
        view_name: str = DEFAULT_VIEW_NAME,
    ):
        self._schema = schema
        self._backward = backward
        self._view_name = view_name
        self._forward_cache: "Dict[Location, FrozenSet[Location]] | None" = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """Schema of the view."""
        return self._schema

    @property
    def view_name(self) -> str:
        """Name used for view locations."""
        return self._view_name

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All view rows, deterministically ordered."""
        return tuple(sorted({row for row, _ in self._backward}, key=repr))

    def relation(self) -> Relation:
        """The view as a plain relation."""
        return Relation(
            self._view_name, self._schema, {row for row, _ in self._backward}
        )

    def view_locations(self) -> Tuple[Location, ...]:
        """Every location of the view, deterministically ordered."""
        out = [
            Location(self._view_name, row, attr) for row, attr in self._backward
        ]
        return tuple(sorted(out, key=lambda loc: (repr(loc.row), loc.attribute)))

    # ------------------------------------------------------------------
    # Backward image
    # ------------------------------------------------------------------
    def backward(self, row: Row, attribute: str) -> FrozenSet[Location]:
        """Source locations that propagate to view field ``(row, attribute)``.

        Raises :class:`InfeasibleError` when the field is not in the view.
        """
        key = (tuple(row), attribute)
        if key not in self._backward:
            raise InfeasibleError(
                f"({row!r}, {attribute!r}) is not a field of the view"
            )
        return self._backward[key]

    def as_dict(self) -> Dict[ViewField, FrozenSet[Location]]:
        """A copy of the backward map."""
        return dict(self._backward)

    # ------------------------------------------------------------------
    # Forward image
    # ------------------------------------------------------------------
    def forward(self, source: Location) -> FrozenSet[Location]:
        """View locations an annotation on ``source`` propagates to.

        The inverse image of the backward map: all view fields whose
        where-provenance contains ``source``.
        """
        return self.forward_closure().get(source, frozenset())

    def forward_closure(self) -> Dict[Location, FrozenSet[Location]]:
        """Forward images for every source location that reaches the view.

        Source locations with an empty forward image do not appear as keys.
        """
        if self._forward_cache is None:
            forward: Dict[Location, Set[Location]] = {}
            for (row, attr), sources in self._backward.items():
                view_loc = Location(self._view_name, row, attr)
                for src in sources:
                    forward.setdefault(src, set()).add(view_loc)
            self._forward_cache = {
                src: frozenset(locs) for src, locs in forward.items()
            }
        return dict(self._forward_cache)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WhereProvenance):
            return NotImplemented
        return self._schema == other._schema and self._backward == other._backward


def where_provenance(
    query: Query,
    db: Database,
    view_name: str = DEFAULT_VIEW_NAME,
    optimizer_level: "int | None" = None,
) -> WhereProvenance:
    """Compute the full annotation-propagation relation of ``query`` on ``db``.

    ``optimizer_level`` selects the plan-compiler level (``None`` = the
    library default).  The relation ``R(Q, S)`` is invariant under the
    optimizer's rewrites — they preserve attribute names and the natural
    join structure, which is exactly what the paper's propagation rules
    key on — so every level returns the same annotations (pinned by the
    soundness property tests).
    """
    plan = cached_plan(query, db, optimizer_level)
    return WhereProvenance(plan.schema, plan.where_rows(db), view_name)


def annotate(
    query: Query, db: Database, source: Location, view_name: str = DEFAULT_VIEW_NAME
) -> FrozenSet[Location]:
    """Forward-propagate an annotation on ``source`` through ``query``.

    Convenience wrapper over :meth:`WhereProvenance.forward`.
    """
    return where_provenance(query, db, view_name).forward(source)
