"""Command-line interface.

Operates on a JSON database file of the form::

    {
      "relations": [
        {"name": "UserGroup", "schema": ["user", "group"],
         "rows": [["joe", "g1"], ["ann", "g1"]]},
        {"name": "GroupFile", "schema": ["group", "file"],
         "rows": [["g1", "f1"]]}
      ]
    }

Sub-commands (query syntax is the DSL of :mod:`repro.algebra.parser`)::

    repro show DB.json
    repro eval DB.json "PROJECT[user, file](UserGroup JOIN GroupFile)"
    repro classify "PROJECT[user, file](UserGroup JOIN GroupFile)"
    repro normalize DB.json QUERY
    repro plan DB.json QUERY
    repro witnesses DB.json QUERY '["joe", "f1"]'
    repro delete DB.json QUERY '["joe", "f1"]' --objective view
    repro delete DB.json QUERY '["joe", "f1"]' --workers 4
    repro annotate DB.json QUERY '["joe", "f1"]' file
    repro apply DB.json --delete '["UserGroup", ["joe", "g1"]]'
    repro apply DB.json --insert '["GroupFile", ["g2", "f9"]]' --dry-run
    repro serve DB.json --port 7464 --workers 4
    repro serve DB.json --slow-query-ms 50 --trace-dir /tmp/traces
    repro stats 127.0.0.1:7464
    repro stats 127.0.0.1:7464 --format text

``apply`` performs a *real* write: the pair flags are repeatable, the
delta is normalized to its net effect (delete-then-insert of the same row
is a no-op), and the updated database is written back to the file unless
``--dry-run`` is given.

``delete --workers N`` shards the solvers' candidate-batch evaluation over
``N`` worker threads/processes (:mod:`repro.parallel`); the plan printed is
identical for every worker count.

``serve`` starts the long-lived serving engine (:mod:`repro.service`): an
asyncio front door speaking newline-delimited JSON request/response
envelopes (see :mod:`repro.service.requests`), with micro-batching of
hypothetical-deletion candidates and a persistent worker pool.  ``--name``
sets the registry name requests address the database by (default ``db``);
``--max-requests N`` serves N requests and exits (smoke tests);
``--port-file PATH`` writes the bound ``host port`` once listening, so
callers that passed ``--port 0`` learn the kernel-chosen port.

Serving is observable (:mod:`repro.observability`): ``--slow-query-ms T``
streams every request slower than ``T`` milliseconds to stderr (with the
rendered plan and witness build stats attached) and keeps the offenders
in the slow-query ring a ``StatsRequest`` reads back; ``--trace-dir DIR``
buffers per-request span trees and dumps them as Chrome trace-event JSON
(``DIR/repro-trace-<pid>.json``, loadable in ``chrome://tracing`` or
Perfetto) on shutdown.

``stats`` asks a running server for its live observability snapshot over
one NDJSON request — request counters, per-kind latency histograms
(p50/p95/p99), batcher queue stats, cache/pool counters, and recent
slow-query entries.  ``--format text`` prints the Prometheus-style text
exposition instead (the HTTP-free ``/metrics`` equivalent)::

    $ repro stats 127.0.0.1:7464
    requests: 1042   errors: 0
    service.latency.hypothetical: p50=512.0us p99=4.1ms (n=871)
    batcher: pending=3 batches_issued=112 coalesced_requests=759
    slow queries (threshold 50.0ms): 2 logged
      0.0613s hypothetical db PROJECT[user, file](UserGroup JOIN GroupFile)

Exit status is 0 on success, 2 on usage errors, 1 on library errors (which
are printed, not raised).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import ParseError, ReproError
from repro.algebra import (
    Database,
    Relation,
    TableStatistics,
    compile_plan,
    evaluate,
    is_normal_form,
    normalize,
    parse_query,
    query_class,
    render_query_tree,
    render_relation,
)
from repro.algebra.ast import Query
from repro.algebra.render import render_plan
from repro.annotation import place_annotation
from repro.deletion import delete_view_tuple, minimum_source_deletion, verify_plan
from repro.provenance import Location, why_provenance

__all__ = ["main", "load_database"]


def load_database(path: str) -> Database:
    """Load a JSON database file (see module docstring for the format)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "relations" not in payload:
        raise ReproError(f"{path}: expected an object with a 'relations' key")
    relations = []
    for entry in payload["relations"]:
        try:
            relations.append(
                Relation(
                    entry["name"],
                    entry["schema"],
                    [tuple(row) for row in entry["rows"]],
                )
            )
        except KeyError as missing:
            raise ReproError(
                f"{path}: relation entry is missing key {missing}"
            ) from None
    return Database(relations)


def _parse_query_cli(text: str) -> Query:
    """Parse a query, pointing at the offending token on failure.

    A :class:`ParseError` carries the character offset of the problem; the
    CLI renders the query with a caret under that position so the error
    names the offending subexpression instead of just describing it.
    """
    try:
        return parse_query(text)
    except ParseError as err:
        if err.position is None or err.position < 0:
            raise
        caret = " " * err.position + "^"
        raise ReproError(
            f"{err}\nin query:\n  {text}\n  {caret}"
        ) from None


def _locate_ill_typed_subquery(query: Query, catalog) -> "Query | None":
    """The smallest subquery that fails schema inference over ``catalog``.

    Children are smaller than their parents, so scanning subqueries in
    size order finds the innermost offender first.
    """
    for sub in sorted(query.subqueries(), key=Query.size):
        try:
            sub.output_schema(catalog)
        except ReproError:
            return sub
    return None


def _reraise_with_subexpression(err: ReproError, query: Query, catalog) -> None:
    """Re-raise ``err`` naming the offending subexpression, rendered."""
    offender = _locate_ill_typed_subquery(query, catalog)
    if offender is None:
        raise err
    raise ReproError(
        f"{err}\nin subexpression:\n{render_query_tree(offender, '  ')}"
    ) from None


def _positive_int(text: str) -> int:
    """argparse type for flags that must be a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid positive integer {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _parse_row(text: str) -> tuple:
    """Parse a view row given as a JSON array on the command line."""
    try:
        values = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReproError(f"invalid row {text!r}: {err}") from None
    if not isinstance(values, list):
        raise ReproError(f"row must be a JSON array, got {text!r}")
    return tuple(values)


def _cmd_show(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    for name in db:
        print(render_relation(db[name]))
        print()


def _cmd_eval(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    print(render_relation(evaluate(query, db)))


def _cmd_classify(args: argparse.Namespace) -> None:
    query = _parse_query_cli(args.query)
    letters = query_class(query, include_rename=True)
    print(f"operators: {letters or '(none)'}")
    print(f"normal form: {is_normal_form(query)}")
    print(render_query_tree(query))


def _cmd_normalize(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    catalog = {name: db[name].schema for name in db}
    try:
        print(render_query_tree(normalize(query, catalog)))
    except ReproError as err:
        _reraise_with_subexpression(err, query, catalog)


def _cmd_plan(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    catalog = {name: db[name].schema for name in db}
    if args.optimize:
        stats = TableStatistics.from_database(db, sorted(query.relation_names()))
        plan = compile_plan(query, catalog, optimizer_level=1, stats=stats)
    else:
        plan = compile_plan(query, catalog)
    print(f"output schema: ({', '.join(plan.schema.attributes)})")
    print("logical plan (input):")
    print(render_query_tree(query, "  "))
    if args.optimize:
        print("logical plan (optimized):")
        print(render_query_tree(plan.logical, "  "))
        applied = ", ".join(plan.rewrites) if plan.rewrites else "none"
        print(f"applied rewrites: {applied}")
    print("physical plan:")
    print(render_plan(plan, "  "))


def _cmd_witnesses(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    row = _parse_row(args.row)
    prov = why_provenance(query, db)
    for index, witness in enumerate(sorted(prov.witnesses(row), key=repr), 1):
        parts = ", ".join(f"{rel}{list(r)!r}" for rel, r in sorted(witness, key=repr))
        print(f"witness {index}: {parts}")


def _cmd_delete(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    row = _parse_row(args.row)
    if args.objective == "view":
        plan = delete_view_tuple(
            query,
            db,
            row,
            allow_exponential=not args.no_exponential,
            workers=args.workers,
        )
    else:
        plan = minimum_source_deletion(
            query,
            db,
            row,
            allow_exponential=not args.no_exponential,
            workers=args.workers,
        )
    verify_plan(query, db, plan)
    print(f"algorithm: {plan.algorithm}")
    print(f"optimal: {plan.optimal}")
    for rel, r in plan.sorted_deletions():
        print(f"delete: {rel}{list(r)!r}")
    if plan.side_effects:
        for effect in sorted(plan.side_effects, key=repr):
            print(f"side effect: view row {list(effect)!r} also removed")
    else:
        print("side effects: none")


def _parse_pair(text: str) -> tuple:
    """Parse a ``'["Relation", [v1, v2]]'`` pair from the command line."""
    try:
        value = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReproError(f"invalid pair {text!r}: {err}") from None
    if (
        not isinstance(value, list)
        or len(value) != 2
        or not isinstance(value[0], str)
        or not isinstance(value[1], list)
    ):
        raise ReproError(
            f"pair must be a JSON array [relation, row], got {text!r}"
        )
    return (value[0], tuple(value[1]))


def _save_database(db: Database, path: str) -> None:
    """Write ``db`` back to the JSON file format ``load_database`` reads."""
    payload = {
        "relations": [
            {
                "name": name,
                "schema": list(db[name].schema.attributes),
                "rows": [list(row) for row in db[name].sorted_rows()],
            }
            for name in db
        ]
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _cmd_apply(args: argparse.Namespace) -> None:
    from repro.versioning import VersionedDatabase

    db = load_database(args.database)
    vdb = VersionedDatabase(db)
    delta = vdb.apply_delta(
        deletions=[_parse_pair(text) for text in args.delete or ()],
        inserts=[_parse_pair(text) for text in args.insert or ()],
    )
    print(f"epoch: {vdb.epoch}")
    print(f"deleted: {len(delta.deletions)}")
    print(f"inserted: {len(delta.inserts)}")
    for rel, row in delta.deletions:
        print(f"- {rel}{list(row)!r}")
    for rel, row in delta.inserts:
        print(f"+ {rel}{list(row)!r}")
    if args.dry_run:
        print("dry run: file not modified")
    elif delta:
        _save_database(vdb.db, args.database)
    else:
        print("no net change: file not modified")


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio
    import os

    from repro.observability import SlowQueryLog, TraceSink, install_sink
    from repro.service import MicroBatcher, ServiceEngine, ServiceServer

    db = load_database(args.database)

    slow_log = None
    if args.slow_query_ms is not None:

        def _report(entry: dict) -> None:
            line = (
                f"slow query: {entry['seconds']:.4f}s {entry['kind']} "
                f"{entry['database']} {entry['query']}"
            )
            if "plan" in entry:
                line += f"\n  plan:\n    " + str(entry["plan"]).replace(
                    "\n", "\n    "
                )
            if "build_stats" in entry:
                line += f"\n  build_stats: {entry['build_stats']}"
            print(line, file=sys.stderr, flush=True)

        slow_log = SlowQueryLog(
            threshold_s=args.slow_query_ms / 1000.0, sink=_report
        )

    sink = None
    if args.trace_dir is not None:
        os.makedirs(args.trace_dir, exist_ok=True)
        sink = TraceSink()
        install_sink(sink)

    async def run() -> None:
        with ServiceEngine(
            {args.name: db}, workers=args.workers, slow_query_log=slow_log
        ) as engine:
            with MicroBatcher(
                engine,
                max_batch=args.max_batch,
                max_delay_s=args.batch_delay_ms / 1000.0,
                max_pending=args.max_pending,
            ) as batcher:
                server = ServiceServer(
                    engine,
                    host=args.host,
                    port=args.port,
                    batcher=batcher,
                    max_requests=args.max_requests,
                )
                host, port = await server.start()
                print(f"serving {args.name!r} on {host}:{port}", flush=True)
                if args.port_file:
                    with open(args.port_file, "w") as handle:
                        handle.write(f"{host} {port}\n")
                try:
                    await server.wait_closed()
                finally:
                    await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        if sink is not None:
            install_sink(None)
            path = os.path.join(
                args.trace_dir, f"repro-trace-{os.getpid()}.json"
            )
            events = sink.dump(path)
            print(f"trace: {events} events -> {path}", file=sys.stderr)


def _format_latency(seconds: "float | None") -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.3f}s"


def _cmd_stats(args: argparse.Namespace) -> None:
    import socket

    from repro.service import StatsRequest, encode_request

    host, _, port_text = args.address.rpartition(":")
    if not host or not port_text.isdigit():
        raise ReproError(
            f"address must be host:port, got {args.address!r}"
        )
    payload = encode_request(StatsRequest(format=args.format))
    payload["id"] = 1
    try:
        with socket.create_connection(
            (host, int(port_text)), timeout=args.timeout_s
        ) as conn:
            conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
    except OSError as err:
        raise ReproError(f"cannot reach {args.address}: {err}") from None
    envelope = json.loads(data.decode("utf-8"))
    if not envelope.get("ok"):
        raise ReproError(f"server answered: {envelope.get('error')}")
    if args.format == "text":
        print(envelope.get("text", ""), end="")
        return
    if args.json:
        print(json.dumps(envelope, indent=2, sort_keys=True))
        return
    stats = envelope.get("stats", {})
    metrics = envelope.get("metrics", {})
    print(f"requests: {stats.get('requests', 0)}   errors: {stats.get('errors', 0)}")
    for name, snap in sorted(metrics.get("histograms", {}).items()):
        if not snap.get("count"):
            continue
        # Histograms are latencies unless the name says otherwise
        # (batch_size / coalesce_factor count requests, not seconds).
        timed = "seconds" in name or ".latency." in name
        fmt = _format_latency if timed else (lambda v: "-" if v is None else f"{v:g}")
        print(
            f"{name}: p50={fmt(snap.get('p50'))} "
            f"p95={fmt(snap.get('p95'))} "
            f"p99={fmt(snap.get('p99'))} (n={snap['count']})"
        )
    batcher = stats.get("batcher")
    if isinstance(batcher, dict):
        print(
            f"batcher: pending={batcher.get('pending', 0)} "
            f"batches_issued={batcher.get('batches_issued', 0)} "
            f"coalesced_requests={batcher.get('coalesced_requests', 0)} "
            f"expired={batcher.get('expired', 0)} "
            f"overloads={batcher.get('overloads', 0)}"
        )
    cache = stats.get("cache")
    if isinstance(cache, dict):
        print(
            f"cache: hits={cache.get('hits', 0)} misses={cache.get('misses', 0)} "
            f"evictions={cache.get('evictions', 0)} spills={cache.get('spills', 0)}"
        )
    pools = stats.get("pools")
    if isinstance(pools, dict):
        print(
            f"pools: created={pools.get('created', 0)} "
            f"reused={pools.get('reused', 0)} "
            f"live_thread={pools.get('live_thread_pools', 0)} "
            f"live_process={pools.get('live_process_pools', 0)}"
        )
    slow = envelope.get("slow_queries", [])
    if slow:
        threshold = slow[-1].get("threshold_s", 0.0)
        print(f"slow queries (threshold {threshold * 1e3:.1f}ms): {len(slow)} logged")
        for entry in slow[-args.slow_limit:]:
            print(
                f"  {entry.get('seconds', 0.0):.4f}s {entry.get('kind', '?')} "
                f"{entry.get('database', '?')} {entry.get('query', '')}"
            )


def _cmd_annotate(args: argparse.Namespace) -> None:
    db = load_database(args.database)
    query = _parse_query_cli(args.query)
    row = _parse_row(args.row)
    target = Location("V", row, args.attribute)
    placement = place_annotation(
        query, db, target, allow_exponential=not args.no_exponential
    )
    print(f"algorithm: {placement.algorithm}")
    print(f"annotate: {placement.source}")
    for location in sorted(map(str, placement.propagated)):
        print(f"propagates to: {location}")
    print(f"side effects: {placement.num_side_effects}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deletion and annotation propagation through views "
        "(Buneman, Khanna, Tan — PODS 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser("show", help="print every relation of a database")
    p_show.add_argument("database", help="path to a JSON database file")
    p_show.set_defaults(handler=_cmd_show)

    p_eval = sub.add_parser("eval", help="evaluate a query and print the view")
    p_eval.add_argument("database")
    p_eval.add_argument("query", help="query in the DSL syntax")
    p_eval.set_defaults(handler=_cmd_eval)

    p_classify = sub.add_parser("classify", help="show a query's class and tree")
    p_classify.add_argument("query")
    p_classify.set_defaults(handler=_cmd_classify)

    p_norm = sub.add_parser("normalize", help="print the Theorem 3.1 normal form")
    p_norm.add_argument("database")
    p_norm.add_argument("query")
    p_norm.set_defaults(handler=_cmd_normalize)

    p_plan = sub.add_parser(
        "plan",
        help="print the logical (before/after rewriting) and physical plans",
    )
    p_plan.add_argument("database")
    p_plan.add_argument("query")
    p_plan.add_argument(
        "--optimize",
        default=True,
        action=argparse.BooleanOptionalAction,
        help="run the statistics-driven logical rewriter (default: on; "
        "--no-optimize compiles the query exactly as written)",
    )
    p_plan.set_defaults(handler=_cmd_plan)

    p_wit = sub.add_parser("witnesses", help="list a view tuple's minimal witnesses")
    p_wit.add_argument("database")
    p_wit.add_argument("query")
    p_wit.add_argument("row", help="view row as a JSON array")
    p_wit.set_defaults(handler=_cmd_witnesses)

    p_del = sub.add_parser("delete", help="plan a view-tuple deletion")
    p_del.add_argument("database")
    p_del.add_argument("query")
    p_del.add_argument("row", help="view row as a JSON array")
    p_del.add_argument(
        "--objective",
        choices=("view", "source"),
        default="view",
        help="minimize view side effects (default) or source deletions",
    )
    p_del.add_argument(
        "--no-exponential",
        action="store_true",
        help="refuse/avoid exponential algorithms on the NP-hard fragments",
    )
    p_del.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shard candidate-batch evaluation over N worker "
        "threads/processes (default: serial; answers are identical)",
    )
    p_del.set_defaults(handler=_cmd_delete)

    p_apply = sub.add_parser(
        "apply", help="apply deletions/inserts to a database file"
    )
    p_apply.add_argument("database")
    p_apply.add_argument(
        "--delete",
        action="append",
        metavar="PAIR",
        help='a ["Relation", [v1, ...]] pair to delete (repeatable)',
    )
    p_apply.add_argument(
        "--insert",
        action="append",
        metavar="PAIR",
        help='a ["Relation", [v1, ...]] pair to insert (repeatable)',
    )
    p_apply.add_argument(
        "--dry-run",
        action="store_true",
        help="report the net delta without writing the file back",
    )
    p_apply.set_defaults(handler=_cmd_apply)

    p_serve = sub.add_parser(
        "serve",
        help="serve the database long-lived over newline-delimited JSON",
    )
    p_serve.add_argument("database", help="path to a JSON database file")
    p_serve.add_argument(
        "--name",
        default="db",
        help="registry name requests address the database by (default: db)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=7464,
        help="TCP port (0 lets the kernel choose; see --port-file)",
    )
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shard batched candidate evaluation over N persistent workers",
    )
    p_serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=256,
        metavar="N",
        help="most deletion candidates coalesced into one kernel call",
    )
    p_serve.add_argument(
        "--batch-delay-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="longest a candidate waits for company before executing",
    )
    p_serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=10_000,
        metavar="N",
        help="bounded request queue; beyond it requests answer overload",
    )
    p_serve.add_argument(
        "--max-requests",
        type=_positive_int,
        default=None,
        metavar="N",
        help="serve N requests then exit (smoke tests; default: forever)",
    )
    p_serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound 'host port' here once listening",
    )
    p_serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log requests slower than MS milliseconds to stderr and keep "
        "them in the slow-query ring a StatsRequest reads back",
    )
    p_serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="buffer per-request span trees and dump Chrome trace-event "
        "JSON to DIR/repro-trace-<pid>.json on shutdown",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_stats = sub.add_parser(
        "stats",
        help="print a running server's live metrics/stats snapshot",
    )
    p_stats.add_argument(
        "address", help="the server's host:port (e.g. 127.0.0.1:7464)"
    )
    p_stats.add_argument(
        "--format",
        choices=("json", "text"),
        default="json",
        help="json (default: a human-readable digest of the JSON snapshot) "
        "or text (the raw Prometheus-style exposition)",
    )
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON envelope instead of the digest",
    )
    p_stats.add_argument(
        "--timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="connect/read timeout (default: 10s)",
    )
    p_stats.add_argument(
        "--slow-limit",
        type=_positive_int,
        default=10,
        metavar="N",
        help="most slow-query entries printed in the digest (default: 10)",
    )
    p_stats.set_defaults(handler=_cmd_stats)

    p_ann = sub.add_parser("annotate", help="plan an annotation placement")
    p_ann.add_argument("database")
    p_ann.add_argument("query")
    p_ann.add_argument("row", help="view row as a JSON array")
    p_ann.add_argument("attribute", help="view attribute to annotate")
    p_ann.add_argument("--no-exponential", action="store_true")
    p_ann.set_defaults(handler=_cmd_annotate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.handler(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
