"""Max-flow / min-cut (Dinic's algorithm), built from scratch.

Theorem 2.6 of the paper solves the minimum source deletion problem for
chain-join PJ queries by an s–t min cut in a layered network with node
capacities.  This module provides the flow substrate:

* :class:`FlowNetwork` — a directed graph with integer/float capacities
  (``float('inf')`` allowed) built incrementally;
* :meth:`FlowNetwork.max_flow` — Dinic's blocking-flow algorithm;
* :meth:`FlowNetwork.min_cut` — the cut edges and the source-side vertex set
  derived from the final residual graph.

Node capacities (needed by the paper's construction: each tuple-node can be
"deleted" at cost 1) are expressed by the standard node-splitting transform,
which :mod:`repro.deletion.chain_join` performs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import ReproError

__all__ = ["FlowNetwork", "INF"]

#: Infinite capacity marker.
INF = float("inf")


class _Edge:
    """Internal residual edge."""

    __slots__ = ("target", "capacity", "flow", "reverse_index", "is_forward")

    def __init__(self, target: int, capacity: float, reverse_index: int, is_forward: bool):
        self.target = target
        self.capacity = capacity
        self.flow = 0.0
        self.reverse_index = reverse_index
        self.is_forward = is_forward

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


class FlowNetwork:
    """A capacitated directed graph over arbitrary hashable node labels.

    >>> net = FlowNetwork()
    >>> net.add_edge("s", "a", 3)
    >>> net.add_edge("a", "t", 2)
    >>> net.max_flow("s", "t")
    2.0
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._adjacency: List[List[_Edge]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def node(self, label: Hashable) -> int:
        """Intern a node label, creating the node if needed."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self._adjacency.append([])
        return self._index[label]

    def add_edge(self, source: Hashable, target: Hashable, capacity: float) -> None:
        """Add a directed edge with the given capacity.

        Parallel edges are allowed and behave additively.
        """
        if capacity < 0:
            raise ReproError(f"negative capacity {capacity!r}")
        u = self.node(source)
        v = self.node(target)
        forward = _Edge(v, capacity, len(self._adjacency[v]), True)
        backward = _Edge(u, 0.0, len(self._adjacency[u]), False)
        self._adjacency[u].append(forward)
        self._adjacency[v].append(backward)

    @property
    def num_nodes(self) -> int:
        """Number of interned nodes."""
        return len(self._labels)

    def has_node(self, label: Hashable) -> bool:
        """True if the label has been interned."""
        return label in self._index

    # ------------------------------------------------------------------
    # Dinic's algorithm
    # ------------------------------------------------------------------
    def max_flow(self, source: Hashable, sink: Hashable) -> float:
        """Compute the maximum s–t flow value.

        Runs Dinic's algorithm: repeated BFS level graphs + DFS blocking
        flows.  Subsequent calls continue from the current flow (the network
        keeps its state), which is what min_cut relies on.
        """
        if source not in self._index or sink not in self._index:
            raise ReproError("source or sink not present in the network")
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ReproError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(s, t)
            if levels is None:
                return total
            iterators = [0] * len(self._labels)
            while True:
                pushed = self._dfs_push(s, t, INF, levels, iterators)
                if pushed <= 0:
                    break
                total += pushed

    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        levels = [-1] * len(self._labels)
        levels[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._adjacency[u]:
                if edge.residual > 0 and levels[edge.target] < 0:
                    levels[edge.target] = levels[u] + 1
                    queue.append(edge.target)
        return levels if levels[t] >= 0 else None

    def _dfs_push(
        self, u: int, t: int, limit: float, levels: List[int], iterators: List[int]
    ) -> float:
        if u == t:
            return limit
        while iterators[u] < len(self._adjacency[u]):
            edge = self._adjacency[u][iterators[u]]
            if edge.residual > 0 and levels[edge.target] == levels[u] + 1:
                pushed = self._dfs_push(
                    edge.target, t, min(limit, edge.residual), levels, iterators
                )
                if pushed > 0:
                    edge.flow += pushed
                    self._adjacency[edge.target][edge.reverse_index].flow -= pushed
                    return pushed
            iterators[u] += 1
        return 0.0

    # ------------------------------------------------------------------
    # Min cut
    # ------------------------------------------------------------------
    def min_cut(
        self, source: Hashable, sink: Hashable
    ) -> Tuple[float, Set[Hashable], List[Tuple[Hashable, Hashable]]]:
        """Compute a minimum s–t cut.

        Returns ``(value, source_side, cut_edges)`` where ``source_side`` is
        the set of node labels reachable from the source in the residual
        graph after a max flow, and ``cut_edges`` are the saturated forward
        edges crossing from the source side to the sink side.
        """
        value = self.max_flow(source, sink)
        s = self._index[source]
        reachable: Set[int] = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._adjacency[u]:
                if edge.residual > 0 and edge.target not in reachable:
                    reachable.add(edge.target)
                    queue.append(edge.target)
        source_side = {self._labels[i] for i in reachable}
        cut_edges: List[Tuple[Hashable, Hashable]] = []
        for u in reachable:
            for edge in self._adjacency[u]:
                if edge.is_forward and edge.target not in reachable:
                    cut_edges.append((self._labels[u], self._labels[edge.target]))
        return value, source_side, cut_edges
