"""Set cover and hitting set: greedy approximation and exact search.

The paper's source side-effect problem is *set-cover-hard* for the PJ and JU
fragments (Theorems 2.5 and 2.7): the optimal source deletion corresponds to
a minimum hitting set of the view tuple's witnesses.  This module provides
the optimization substrate:

* :func:`greedy_set_cover` — the classical H_n-approximation;
* :func:`greedy_hitting_set` — its dual (pick the element hitting the most
  currently-unhit sets);
* :func:`exact_min_hitting_set` — optimal hitting set by branch and bound,
  guarded by a node budget;
* :func:`enumerate_minimal_hitting_sets` — all inclusion-minimal hitting
  sets (the candidate space of the exact view side-effect solver);
* :func:`harmonic` — H_n, the greedy guarantee the benchmarks compare
  against.

The hitting set problem: given a family of sets over a universe, find a
smallest set of elements intersecting every member.  It is the dual of set
cover and shares its approximability threshold (Feige 1998), which is why
the paper phrases both hardness results through it.
"""

from __future__ import annotations

import heapq
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ExponentialGuardError, ReproError

__all__ = [
    "greedy_set_cover",
    "greedy_hitting_set",
    "exact_min_hitting_set",
    "enumerate_minimal_hitting_sets",
    "is_hitting_set",
    "harmonic",
    "hitting_set_to_set_cover",
]

#: Default branch-and-bound node budget for exact solvers.
DEFAULT_NODE_BUDGET = 2_000_000


def harmonic(n: int) -> float:
    """The n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.

    Greedy set cover is an H_n-approximation where n is the universe size.
    """
    return sum(1.0 / k for k in range(1, n + 1))


def greedy_set_cover(
    universe: Iterable[Hashable], sets: Dict[Hashable, FrozenSet[Hashable]]
) -> List[Hashable]:
    """Greedy set cover: repeatedly take the set covering most new elements.

    Returns the chosen set names in pick order.  Raises :class:`ReproError`
    if the sets cannot cover the universe.
    """
    remaining = set(universe)
    for name, members in sets.items():
        if not isinstance(members, frozenset):
            raise ReproError(f"set {name!r} must be a frozenset")
    chosen: List[Hashable] = []
    while remaining:
        best_name = None
        best_gain = 0
        for name, members in sets.items():
            gain = len(members & remaining)
            if gain > best_gain:
                best_gain = gain
                best_name = name
        if best_name is None:
            raise ReproError("sets do not cover the universe")
        chosen.append(best_name)
        remaining -= sets[best_name]
    return chosen


def is_hitting_set(
    sets: Sequence[FrozenSet[Hashable]], candidate: Iterable[Hashable]
) -> bool:
    """True if ``candidate`` intersects every set of the family."""
    chosen = set(candidate)
    return all(s & chosen for s in sets)


def greedy_hitting_set(sets: Sequence[FrozenSet[Hashable]]) -> Set[Hashable]:
    """Greedy hitting set: pick the element hitting the most unhit sets.

    Equivalent to greedy set cover on the dual instance, hence an
    H_m-approximation where m is the number of sets.  Raises
    :class:`ReproError` when the family contains an empty set (unhittable).
    """
    for s in sets:
        if not s:
            raise ReproError("an empty set cannot be hit")
    unhit: List[FrozenSet[Hashable]] = list(sets)
    chosen: Set[Hashable] = set()
    while unhit:
        counts: Dict[Hashable, int] = {}
        for s in unhit:
            for element in s:
                counts[element] = counts.get(element, 0) + 1
        best = max(counts, key=lambda e: (counts[e], repr(e)))
        chosen.add(best)
        unhit = [s for s in unhit if best not in s]
    return chosen


def _disjoint_lower_bound(sets: Sequence[FrozenSet[Hashable]]) -> int:
    """A cheap lower bound: a maximal collection of pairwise-disjoint sets.

    Any hitting set needs one distinct element per disjoint set.
    """
    bound = 0
    used: Set[Hashable] = set()
    for s in sorted(sets, key=len):
        if not (s & used):
            bound += 1
            used |= s
    return bound


def exact_min_hitting_set(
    sets: Sequence[FrozenSet[Hashable]],
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> FrozenSet[Hashable]:
    """An optimal (minimum-cardinality) hitting set by branch and bound.

    Branches on the elements of a smallest currently-unhit set; prunes with
    the greedy upper bound and the disjoint-set lower bound.  Exponential in
    the worst case (the problem is NP-hard); raises
    :class:`ExponentialGuardError` when more than ``node_budget`` search
    nodes are expanded.
    """
    family = [frozenset(s) for s in sets]
    for s in family:
        if not s:
            raise ReproError("an empty set cannot be hit")
    if not family:
        return frozenset()

    best: Set[Hashable] = greedy_hitting_set(family)
    nodes = 0

    def search(unhit: List[FrozenSet[Hashable]], chosen: Set[Hashable]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_budget:
            raise ExponentialGuardError(
                f"exact_min_hitting_set exceeded node budget {node_budget}"
            )
        if not unhit:
            if len(chosen) < len(best):
                best = set(chosen)
            return
        if len(chosen) + _disjoint_lower_bound(unhit) >= len(best):
            return
        pivot = min(unhit, key=len)
        for element in sorted(pivot, key=repr):
            chosen.add(element)
            remaining = [s for s in unhit if element not in s]
            search(remaining, chosen)
            chosen.remove(element)

    search(family, set())
    return frozenset(best)


def enumerate_minimal_hitting_sets(
    sets: Sequence[FrozenSet[Hashable]],
    node_budget: int = DEFAULT_NODE_BUDGET,
    max_results: Optional[int] = None,
) -> Iterator[FrozenSet[Hashable]]:
    """Yield every inclusion-minimal hitting set of the family.

    The classical branching algorithm: pick an unhit set, branch on each of
    its elements; a branch that selects element ``e`` forbids revisiting the
    elements tried before ``e`` at the same node (avoiding duplicate
    enumeration).  Results are checked for inclusion-minimality before being
    yielded, because the branching tree can reach non-minimal candidates.

    Exponential in general — the paper notes it is NP-hard even to find all
    witnesses — so the search is guarded by ``node_budget``.
    """
    family = [frozenset(s) for s in sets]
    for s in family:
        if not s:
            raise ReproError("an empty set cannot be hit")
    if not family:
        yield frozenset()
        return

    nodes = 0
    produced = 0
    seen: Set[FrozenSet[Hashable]] = set()

    def minimal(candidate: FrozenSet[Hashable]) -> bool:
        return all(
            not is_hitting_set(family, candidate - {element}) for element in candidate
        )

    stack: List[Tuple[Set[Hashable], Set[Hashable]]] = [(set(), set())]
    results: List[FrozenSet[Hashable]] = []
    while stack:
        nodes += 1
        if nodes > node_budget:
            raise ExponentialGuardError(
                f"enumerate_minimal_hitting_sets exceeded node budget {node_budget}"
            )
        chosen, forbidden = stack.pop()
        unhit = [s for s in family if not (s & chosen)]
        if not unhit:
            candidate = frozenset(chosen)
            if candidate not in seen and minimal(candidate):
                seen.add(candidate)
                results.append(candidate)
                produced += 1
                yield candidate
                if max_results is not None and produced >= max_results:
                    return
            continue
        pivot = min(unhit, key=len)
        tried: Set[Hashable] = set()
        for element in sorted(pivot, key=repr):
            if element in forbidden:
                continue
            stack.append((chosen | {element}, forbidden | tried))
            tried.add(element)


def hitting_set_to_set_cover(
    sets: Sequence[FrozenSet[Hashable]],
) -> Tuple[Set[int], Dict[Hashable, FrozenSet[int]]]:
    """The dual set-cover instance of a hitting set instance.

    Universe = set indices; for each element ``e``, the dual set is the set
    of indices of family members containing ``e``.  A hitting set of the
    family is exactly a set cover of the dual, which the tests exercise.
    """
    universe = set(range(len(sets)))
    dual: Dict[Hashable, Set[int]] = {}
    for index, s in enumerate(sets):
        for element in s:
            dual.setdefault(element, set()).add(index)
    return universe, {e: frozenset(ix) for e, ix in dual.items()}
