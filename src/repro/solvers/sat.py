"""A CNF representation and a DPLL SAT solver.

The hardness reductions of the paper start from (monotone) 3SAT.  To verify
both directions of every reduction — *satisfiable formula ⟺ side-effect-free
solution* — the test suite and benchmarks need to actually decide
satisfiability of the generated formulas.  This module provides:

* :class:`CNF` — clauses over integer variables, positive literal ``v``,
  negative literal ``-v`` (DIMACS convention);
* :func:`solve` — complete DPLL search with unit propagation and pure-literal
  elimination, returning a satisfying assignment or None;
* :func:`enumerate_models` — all satisfying assignments (for small formulas);
* helpers to build and inspect formulas programmatically.

The solver is exponential in the worst case, as it must be (these are NP-hard
instances); the reductions keep benchmark formulas small.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["CNF", "Clause", "solve", "enumerate_models", "assignment_satisfies"]

#: A clause: a tuple of non-zero integer literals.
Clause = Tuple[int, ...]

#: A (partial) assignment: variable -> bool.
Assignment = Dict[int, bool]


class CNF:
    """A propositional formula in conjunctive normal form.

    Variables are positive integers; a literal is ``v`` or ``-v``.

    >>> f = CNF([(1, 2), (-1, 2), (-2,)])
    >>> f.num_variables
    2
    >>> solve(f) is None
    True
    """

    __slots__ = ("_clauses", "_variables")

    def __init__(self, clauses: Iterable[Sequence[int]]):
        normalized: List[Clause] = []
        variables: set = set()
        for clause in clauses:
            lits = tuple(clause)
            if not lits:
                # An empty clause is unsatisfiable; keep it, solve() handles it.
                normalized.append(lits)
                continue
            for lit in lits:
                if not isinstance(lit, int) or lit == 0:
                    raise ReproError(f"invalid literal {lit!r} in clause {lits!r}")
                variables.add(abs(lit))
            normalized.append(lits)
        self._clauses = tuple(normalized)
        self._variables = frozenset(variables)

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The clauses, in input order."""
        return self._clauses

    @property
    def variables(self) -> FrozenSet[int]:
        """The set of variables that occur in some clause."""
        return self._variables

    @property
    def num_variables(self) -> int:
        """Number of distinct variables."""
        return len(self._variables)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def is_monotone_3sat(self) -> bool:
        """True if every clause is all-positive or all-negative.

        This is the *monotone 3SAT* restriction the paper reduces from
        (Theorems 2.1 and 2.2); clause width is not checked here.
        """
        for clause in self._clauses:
            if not clause:
                return False
            positive = sum(1 for lit in clause if lit > 0)
            if positive not in (0, len(clause)):
                return False
        return True

    def __repr__(self) -> str:
        return f"CNF({self.num_variables} vars, {self.num_clauses} clauses)"


def assignment_satisfies(cnf: CNF, assignment: Assignment) -> bool:
    """True if the (total) assignment satisfies every clause."""
    for clause in cnf.clauses:
        if not any(
            assignment.get(abs(lit), False) == (lit > 0) for lit in clause
        ):
            return False
    return True


def _unit_propagate(
    clauses: List[List[int]], assignment: Assignment
) -> Optional[List[List[int]]]:
    """Apply unit propagation; return simplified clauses or None on conflict."""
    changed = True
    while changed:
        changed = False
        units = [c[0] for c in clauses if len(c) == 1]
        for lit in units:
            var, value = abs(lit), lit > 0
            if var in assignment:
                if assignment[var] != value:
                    return None
                continue
            assignment[var] = value
            changed = True
        if changed:
            clauses = _simplify(clauses, assignment)
            if clauses is None:
                return None
    return clauses


def _simplify(
    clauses: List[List[int]], assignment: Assignment
) -> Optional[List[List[int]]]:
    """Drop satisfied clauses and falsified literals; None on empty clause."""
    out: List[List[int]] = []
    for clause in clauses:
        new_clause: List[int] = []
        satisfied = False
        for lit in clause:
            var = abs(lit)
            if var in assignment:
                if assignment[var] == (lit > 0):
                    satisfied = True
                    break
            else:
                new_clause.append(lit)
        if satisfied:
            continue
        if not new_clause:
            return None
        out.append(new_clause)
    return out


def _pure_literals(clauses: List[List[int]]) -> List[int]:
    """Literals whose negation never occurs."""
    seen: set = set()
    for clause in clauses:
        seen.update(clause)
    return [lit for lit in seen if -lit not in seen]


def _choose_branch_variable(clauses: List[List[int]]) -> int:
    """Branch on a variable from a shortest clause (a cheap MOMS heuristic)."""
    best = min(clauses, key=len)
    return abs(best[0])


def solve(cnf: CNF) -> Optional[Assignment]:
    """Decide satisfiability; return a total satisfying assignment or None.

    The returned assignment covers every variable of the formula (variables
    unconstrained after simplification default to False).
    """
    assignment: Assignment = {}
    clauses = _simplify([list(c) for c in cnf.clauses], assignment)
    if clauses is None:
        return None
    result = _dpll(clauses, assignment)
    if result is None:
        return None
    for var in cnf.variables:
        result.setdefault(var, False)
    return result


def _dpll(clauses: List[List[int]], assignment: Assignment) -> Optional[Assignment]:
    clauses = _unit_propagate(clauses, assignment)
    if clauses is None:
        return None
    for lit in _pure_literals(clauses):
        assignment[abs(lit)] = lit > 0
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return assignment
    var = _choose_branch_variable(clauses)
    for value in (True, False):
        trial = dict(assignment)
        trial[var] = value
        simplified = _simplify(clauses, trial)
        if simplified is None:
            continue
        result = _dpll(simplified, trial)
        if result is not None:
            return result
    return None


def enumerate_models(cnf: CNF, limit: Optional[int] = None) -> Iterator[Assignment]:
    """Yield every total satisfying assignment (up to ``limit``).

    Exponential; intended for the small formulas used in tests.
    """
    variables = sorted(cnf.variables)
    count = 0

    def backtrack(index: int, assignment: Assignment) -> Iterator[Assignment]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if index == len(variables):
            if assignment_satisfies(cnf, assignment):
                count += 1
                yield dict(assignment)
            return
        var = variables[index]
        for value in (False, True):
            assignment[var] = value
            # Cheap pruning: stop if some clause is already fully falsified.
            if not _falsified(cnf, assignment):
                yield from backtrack(index + 1, assignment)
            del assignment[var]

    yield from backtrack(0, {})


def _falsified(cnf: CNF, partial: Assignment) -> bool:
    """True if some clause is falsified by the partial assignment."""
    for clause in cnf.clauses:
        ok = False
        for lit in clause:
            var = abs(lit)
            if var not in partial or partial[var] == (lit > 0):
                ok = True
                break
        if not ok:
            return True
    return False
