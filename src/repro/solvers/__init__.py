"""Algorithmic substrates: SAT, max-flow, set cover / hitting set.

These are the from-scratch building blocks the paper's algorithms and
reductions rely on: a DPLL SAT solver (to verify reduction correctness),
Dinic max-flow (Theorem 2.6's chain-join min cut), and greedy/exact set
cover and hitting set solvers (the set-cover-hardness side of the dichotomy).
"""

from repro.solvers.sat import (
    CNF,
    assignment_satisfies,
    enumerate_models,
    solve,
)
from repro.solvers.maxflow import INF, FlowNetwork
from repro.solvers.setcover import (
    enumerate_minimal_hitting_sets,
    exact_min_hitting_set,
    greedy_hitting_set,
    greedy_set_cover,
    harmonic,
    hitting_set_to_set_cover,
    is_hitting_set,
)

__all__ = [
    "CNF",
    "solve",
    "enumerate_models",
    "assignment_satisfies",
    "FlowNetwork",
    "INF",
    "greedy_set_cover",
    "greedy_hitting_set",
    "exact_min_hitting_set",
    "enumerate_minimal_hitting_sets",
    "is_hitting_set",
    "harmonic",
    "hitting_set_to_set_cover",
]
