"""Legacy setup shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517/660 builds are unavailable; this shim lets
``pip install -e . --no-build-isolation`` use the classic development
install. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
